//===- Lowering.cpp - High-level to OpenCL-level lowering ---------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Lowering.h"

#include "ir/TypeInference.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "stencil/StencilOps.h"
#include "support/Support.h"

#include <cassert>

using namespace lift;
using namespace lift::ir;
using namespace lift::rewrite;
using lift::stencil::mapAtDepth;
using lift::stencil::slideClampNd;
using lift::stencil::slideNd;

std::string LoweringOptions::describe() const {
  std::string S;
  if (Tile) {
    S = "tiled" + std::to_string(TileOutputs);
    if (UseLocalMem)
      S += "-local";
    if (TileCoarsen > 1)
      S += "-coarsen" + std::to_string(TileCoarsen);
  } else {
    S = "global";
    if (Coarsen > 1)
      S += "-coarsen" + std::to_string(Coarsen);
  }
  if (UnrollReduce)
    S += "-unroll";
  return S;
}

namespace {

LambdaPtr cloneLambda(const LambdaPtr &F) {
  return std::static_pointer_cast<LambdaExpr>(
      deepClone(std::static_pointer_cast<Expr>(F)));
}

/// Builds an n-deep nest of the given map primitive over \p In,
/// applying \p F at the innermost level. Depth d maps to OpenCL
/// dimension n-1-d so the innermost (contiguous) array dimension rides
/// on id dimension 0 for coalescing. \p InnerCoarsen > 1 makes each
/// innermost-dimension thread compute several points sequentially.
ExprPtr buildMapNest(unsigned N, Prim MapKind, const LambdaPtr &F,
                     ExprPtr In, std::int64_t InnerCoarsen = 1,
                     unsigned Depth = 0) {
  int Dim = int(N - 1 - Depth);
  assert(Dim >= 0 && Dim < 3 && "stencils are at most 3D");
  if (Depth == N - 1) {
    if (InnerCoarsen > 1) {
      LambdaPtr PerChunk = lam("chunk", [&](ExprPtr Chunk) {
        return mapSeq(cloneLambda(F), Chunk);
      });
      return join(makeMapLike(MapKind, Dim, PerChunk,
                              split(cst(InnerCoarsen), std::move(In))));
    }
    return makeMapLike(MapKind, Dim, F, std::move(In));
  }
  LambdaPtr Level = lam("lvl" + std::to_string(Depth), [&](ExprPtr X) {
    return buildMapNest(N, MapKind, F, std::move(X), InnerCoarsen,
                        Depth + 1);
  });
  return makeMapLike(MapKind, Dim, Level, std::move(In));
}

/// Innermost-dimension thread coarsening:
/// join(mapGlb(0, chunk => mapSeq(f, chunk), split(c, in))).
ExprPtr buildCoarsenedInner(const LambdaPtr &F, ExprPtr In,
                            std::int64_t Coarsen) {
  LambdaPtr PerChunk = lam("chunk", [&](ExprPtr Chunk) {
    return mapSeq(cloneLambda(F), Chunk);
  });
  return join(mapGlb(0, PerChunk, split(cst(Coarsen), std::move(In))));
}

/// Untiled lowering of an n-dim map nest onto global ids, optionally
/// coarsened along the innermost dimension.
ExprPtr buildGlbNest(unsigned N, const LambdaPtr &F, ExprPtr In,
                     std::int64_t Coarsen, unsigned Depth = 0) {
  if (Depth == N - 1) {
    if (Coarsen > 1)
      return buildCoarsenedInner(F, std::move(In), Coarsen);
    return mapGlb(0, F, std::move(In));
  }
  int Dim = int(N - 1 - Depth);
  LambdaPtr Level = lam("lvl" + std::to_string(Depth), [&](ExprPtr X) {
    return buildGlbNest(N, F, std::move(X), Coarsen, Depth + 1);
  });
  return makeMapLike(Prim::MapGlb, Dim, Level, std::move(In));
}

/// A cooperative copy of an n-dim tile into local memory: nested mapLcl
/// loops of the identity with the outermost lambda marked toLocal.
ExprPtr buildLocalCopy(unsigned N, ExprPtr Tile, unsigned Depth = 0) {
  int Dim = int(N - 1 - Depth);
  if (Depth == N - 1) {
    LambdaPtr Id = etaLambda(ufIdFloat());
    if (Depth == 0)
      Id = toLocal(Id);
    return mapLcl(Dim, Id, std::move(Tile));
  }
  LambdaPtr Level = lam("cpy" + std::to_string(Depth), [&](ExprPtr X) {
    return buildLocalCopy(N, std::move(X), Depth + 1);
  });
  if (Depth == 0)
    Level = toLocal(Level);
  return makeMapLike(Prim::MapLcl, Dim, Level, std::move(Tile));
}

/// Merges a tiled result of shape [t0]..[t_{n-1}][v0]..[v_{n-1}] back
/// into the flat n-dim grid [t0*v0]..: the multi-dimensional inverse of
/// the tiling rule's join (paper §4.1, Figure 6). Interleaves tile and
/// intra-tile dimensions with transposes, then joins each pair.
///
/// When \p OutExt is non-empty the tile grid is ragged (clamped tiling:
/// the last tile per dimension overlaps its neighbor) and dimension I
/// is reassembled with joinClamp(OutExt[I]) instead of a plain join.
ExprPtr untileNd(unsigned N, ExprPtr E,
                 const std::vector<AExpr> &OutExt = {}) {
  assert((OutExt.empty() || OutExt.size() == N) &&
         "one output extent per dimension when clamping");
  auto JoinDim = [&](unsigned I, ExprPtr X) {
    if (!OutExt.empty())
      return joinClamp(OutExt[I], std::move(X));
    return join(std::move(X));
  };
  if (N == 1)
    return JoinDim(0, std::move(E));
  // Track dimension order: 0..N-1 are tile-grid dims, N..2N-1 are
  // intra-tile dims. Bring each vi right after ti by adjacent swaps.
  std::vector<unsigned> Order;
  for (unsigned I = 0; I != 2 * N; ++I)
    Order.push_back(I);
  for (unsigned I = 0; I != N; ++I) {
    unsigned Target = 2 * I + 1;
    unsigned Pos = 0;
    while (Order[Pos] != N + I)
      ++Pos;
    while (Pos > Target) {
      // Swap positions Pos-1 and Pos == transpose at depth Pos-1.
      E = mapAtDepth(
          Pos - 1, [](ExprPtr X) { return transpose(std::move(X)); }, E);
      std::swap(Order[Pos - 1], Order[Pos]);
      --Pos;
    }
  }
  // Join each (ti, vi) pair; after joining pair i, it occupies one
  // dimension at depth i.
  for (unsigned I = 0; I != N; ++I)
    E = mapAtDepth(I, [&](ExprPtr X) { return JoinDim(I, std::move(X)); },
                   E);
  return E;
}

/// Rebuilds a call with new arguments, copying payload fields.
ExprPtr rebuildCallArgs(const CallExpr &C, std::vector<ExprPtr> Args) {
  auto NC = std::make_shared<CallExpr>(C.getPrim(), std::move(Args));
  NC->UF = C.UF;
  NC->Dim = C.Dim;
  NC->Factor = C.Factor;
  NC->Size = C.Size;
  NC->Step = C.Step;
  NC->PadL = C.PadL;
  NC->PadR = C.PadR;
  NC->Bdy = C.Bdy;
  NC->Index = C.Index;
  NC->IterCount = C.IterCount;
  NC->GenSizes = C.GenSizes;
  return NC;
}

/// Replaces embedded high-level compute map nests (e.g. the inner
/// applications produced by expanding `iterate`) with untiled lowered
/// nests. The code generator then materializes each lowered phase into
/// a global temporary read by the next phase — the multi-phase
/// execution the paper's `iterate` implies (§3.1).
ExprPtr lowerEmbeddedNests(const ExprPtr &E) {
  if (E->getKind() == Expr::Kind::Lambda) {
    const auto *L = dynCast<LambdaExpr>(E);
    ExprPtr NewBody = lowerEmbeddedNests(L->getBody());
    if (NewBody.get() == L->getBody().get())
      return E;
    return lambda(L->getParams(), std::move(NewBody), L->getAddrSpace());
  }
  const auto *C = dynCast<CallExpr>(E);
  if (!C)
    return E;

  // An embedded high-level compute map nest: lower it (untiled).
  if (C->getPrim() == Prim::Map) {
    const auto F = std::static_pointer_cast<LambdaExpr>(C->getArgs()[0]);
    if (!isLayoutOnly(F->getBody())) {
      std::optional<MapNdMatch> M = matchMapNd(E);
      if (M && M->Dims <= 3) {
        ExprPtr Input = lowerEmbeddedNests(M->Input);
        return buildGlbNest(M->Dims, M->F, Input, /*Coarsen=*/1);
      }
    }
  }

  std::vector<ExprPtr> NewArgs;
  bool Changed = false;
  for (const ExprPtr &A : C->getArgs()) {
    ExprPtr NA = lowerEmbeddedNests(A);
    Changed |= NA.get() != A.get();
    NewArgs.push_back(std::move(NA));
  }
  if (!Changed)
    return E;
  return rebuildCallArgs(*C, std::move(NewArgs));
}

/// Records \p Reason for the caller (when requested) and returns the
/// null program, so every bail-out site carries a diagnostic.
Program lowerFail(std::string *WhyNot, const std::string &Reason) {
  if (WhyNot)
    *WhyNot = Reason;
  return nullptr;
}

/// Decides between the clamped (remainder-legal) and exact tiling
/// schemes and validates the tile shape against the per-dimension
/// output extents. Returns true when the clamped scheme applies: at
/// window step 1 every (extent, tile) combination is legal -- tails
/// that do not fill a tile get a shifted full-width tile, and a
/// concrete dimension *shorter* than the tile gets one full-width
/// tile covering it (the caller clamps the per-dimension tile to
/// min(k, extent)). Writes a diagnostic to \p Err only for genuinely
/// unsupported shapes: a remainder fit at window step != 1, whose
/// shifted tail tile would leave the output lattice (deferred).
bool checkTileFit(unsigned N, std::int64_t TileOutputs, const AExpr &Step,
                  const std::vector<AExpr> &OutExt, std::string *Err) {
  bool StepOne =
      Step->getKind() == ArithExpr::Kind::Cst && Step->getCst() == 1;
  if (StepOne)
    return true;
  if (Step->getKind() != ArithExpr::Kind::Cst)
    return false; // symbolic step: keep the exact-fit scheme as-is
  std::int64_t St = Step->getCst();
  if (St <= 0 || TileOutputs % St != 0) {
    *Err = "tile advance " + std::to_string(TileOutputs) +
           " is misaligned with window step " + std::to_string(St);
    return false;
  }
  std::int64_t K = TileOutputs / St;
  for (unsigned I = 0; I != N; ++I) {
    if (OutExt[I]->getKind() != ArithExpr::Kind::Cst)
      continue;
    std::int64_t MDim = OutExt[I]->getCst();
    if (MDim < K || MDim % K != 0) {
      *Err = "tile-indivisible: remainder tiles at window step != 1 are "
             "unsupported (extent " +
             std::to_string(MDim) + ", tile of " + std::to_string(K) +
             " outputs)";
      return false;
    }
  }
  return false;
}

/// Per-dimension tile advance for the clamped scheme: the requested
/// k, clamped to the output extent where the extent is concrete and
/// smaller (that dimension gets exactly one full-width tile). A
/// symbolic extent keeps k -- the lowering's validity precondition
/// extent >= k applies.
std::vector<AExpr> clampTileSteps(unsigned N, const AExpr &V,
                                  std::int64_t TileOutputs,
                                  const std::vector<AExpr> &OutExt) {
  std::vector<AExpr> Steps;
  for (unsigned I = 0; I != N; ++I) {
    if (OutExt[I]->getKind() == ArithExpr::Kind::Cst &&
        OutExt[I]->getCst() < TileOutputs)
      Steps.push_back(OutExt[I]);
    else
      Steps.push_back(V);
  }
  return Steps;
}

/// The actual lowering; the public entry point wraps it with a trace
/// span and success/failure counters.
Program lowerStencilImpl(const Program &P, const LoweringOptions &O,
                         std::string *WhyNot) {
  Program Copy = cloneProgram(P);

  // Expand any iterate into repeated application first.
  int Dummy = 0;
  ExprPtr Body = applyEverywhere(iterateExpandRule(), Copy->getBody(), Dummy);

  std::optional<MapNdMatch> M = matchMapNd(Body);
  if (!M)
    return lowerFail(WhyNot, "program is not a mapNd nest over its input");
  if (M->Dims > 3)
    return lowerFail(WhyNot, "mapNd nests beyond 3 dimensions are unsupported (got " +
                                 std::to_string(M->Dims) + ")");
  unsigned N = M->Dims;

  // Inner stencil phases (from iterate expansion or explicit chains)
  // become lowered nests materialized into global temporaries.
  M->Input = lowerEmbeddedNests(M->Input);

  ExprPtr Lowered;
  if (O.Tile) {
    AExpr V = cst(O.TileOutputs);

    // Per-dimension output extents (outermost first). The clamped
    // tiling scheme's joins need them, and they carry the validity
    // checks below. Typing a throwaway program annotates Body.
    {
      Program Typed = makeProgram(Copy->getParams(), Body);
      std::string TypeErr;
      if (!tryInferTypes(Typed, &TypeErr))
        return lowerFail(WhyNot, "cannot type the stencil body: " + TypeErr);
    }
    std::vector<AExpr> OutExt;
    {
      TypePtr T = Body->getType();
      for (unsigned I = 0; I != N; ++I) {
        if (!T || T->getKind() != Type::Kind::Array)
          return lowerFail(WhyNot, "stencil output is not an n-d array");
        OutExt.push_back(T->getSize());
        T = T->getElem();
      }
    }
    // Caller-supplied concrete extents refine symbolic dimensions so
    // the per-dimension tile clamp and the ragged reassembly know the
    // real grid. The caller promises to run the lowered program at
    // exactly these output extents.
    if (!O.OutputExtents.empty()) {
      if (O.OutputExtents.size() != N)
        return lowerFail(WhyNot,
                         "OutputExtents has " +
                             std::to_string(O.OutputExtents.size()) +
                             " entries for a " + std::to_string(N) +
                             "-d stencil");
      for (unsigned I = 0; I != N; ++I)
        if (OutExt[I]->getKind() != ArithExpr::Kind::Cst)
          OutExt[I] = cst(O.OutputExtents[I]);
    }

    // Single-grid shape: mapNd(f, slideNd(size, step, inner)).
    if (std::optional<SlideNdMatch> S = matchSlideNd(M->Input)) {
      if (S->Dims != N)
        return lowerFail(WhyNot,
                         "slideNd dimensionality does not match the mapNd nest");
      // Tile extent u = v + (size - step), the §4.1 validity constraint.
      AExpr U = add(V, sub(S->Size, S->Step));
      std::string TileErr;
      bool Clamp =
          checkTileFit(N, O.TileOutputs, S->Step, OutExt, &TileErr);
      if (!TileErr.empty())
        return lowerFail(WhyNot, TileErr);
      ExprPtr Tiles;
      if (Clamp) {
        // Per-dimension tile advance (clamped to short extents) with
        // the matching per-dimension window extent u_d = k_d + size-1.
        std::vector<AExpr> VSteps =
            clampTileSteps(N, V, O.TileOutputs, OutExt);
        std::vector<AExpr> USizes;
        for (unsigned I = 0; I != N; ++I)
          USizes.push_back(add(VSteps[I], sub(S->Size, S->Step)));
        Tiles = slideClampNd(N, USizes, VSteps, S->Inner);
      } else {
        Tiles = slideNd(N, U, V, S->Inner);
      }

      LambdaPtr F = M->F;
      auto SizeE = S->Size;
      auto StepE = S->Step;
      bool Local = O.UseLocalMem;
      std::int64_t TC = O.TileCoarsen;
      LambdaPtr PerTile = lam("tile", [&](ExprPtr Tile) {
        ExprPtr Staged = Local ? buildLocalCopy(N, Tile) : Tile;
        return buildMapNest(N, Prim::MapLcl, cloneLambda(F),
                            slideNd(N, SizeE, StepE, std::move(Staged)),
                            TC);
      });
      Lowered = untileNd(N, buildMapNest(N, Prim::MapWrg, PerTile, Tiles),
                         Clamp ? OutExt : std::vector<AExpr>{});
    } else if (std::optional<ZipNdMatch> Z = matchZipNd(M->Input, N)) {
      // Multi-grid shape: mapNd(f, zipNd(comps)). Components that are
      // themselves slideNd neighborhoods get overlapping tiles of
      // extent u (optionally staged in local memory); point-wise
      // components get tiles of k = v/step outputs. The per-tile zips
      // line up because both produce k^n outputs per tile, and under
      // the clamped scheme both tail starts shift by the same amount
      // (input clamp n-u == step * output clamp m-k).
      std::vector<std::optional<SlideNdMatch>> CompMatches;
      AExpr SizeE, StepE;
      for (const ExprPtr &Comp : Z->Comps) {
        std::optional<SlideNdMatch> CS = matchSlideNd(Comp);
        if (CS) {
          if (CS->Dims != N)
            return lowerFail(
                WhyNot, "zip component slideNd dimensionality does not match "
                        "the mapNd nest");
          if (SizeE && (!exprEquals(SizeE, CS->Size) ||
                        !exprEquals(StepE, CS->Step)))
            return lowerFail(
                WhyNot,
                "mixed window geometries are unsupported: slide(" +
                    SizeE->toString() + ", " + StepE->toString() +
                    ") vs slide(" + CS->Size->toString() + ", " +
                    CS->Step->toString() + ")");
          SizeE = CS->Size;
          StepE = CS->Step;
        }
        CompMatches.push_back(std::move(CS));
      }
      if (!SizeE)
        return lowerFail(WhyNot,
                         "tiling requested but no zip component is a slideNd "
                         "neighborhood: nothing to tile");

      std::string TileErr;
      bool Clamp = checkTileFit(N, O.TileOutputs, StepE, OutExt, &TileErr);
      if (!TileErr.empty())
        return lowerFail(WhyNot, TileErr);
      // Point-wise components advance on the output lattice.
      AExpr K = V;
      if (StepE->getKind() == ArithExpr::Kind::Cst &&
          StepE->getCst() > 0 && O.TileOutputs % StepE->getCst() == 0)
        K = cst(O.TileOutputs / StepE->getCst());
      // Clamped scheme (window step 1, so K == V): per-dimension tile
      // advance, clamped to short extents; both component kinds shift
      // their tails by the same amount (input clamp n-u equals the
      // output clamp m-k), so the per-tile zips stay aligned.
      std::vector<AExpr> VSteps =
          Clamp ? clampTileSteps(N, V, O.TileOutputs, OutExt)
                : std::vector<AExpr>{};

      std::vector<bool> IsSlided;
      std::vector<ExprPtr> TiledComps;
      for (std::size_t I = 0, E2 = Z->Comps.size(); I != E2; ++I) {
        if (CompMatches[I]) {
          AExpr U = add(V, sub(SizeE, StepE));
          if (Clamp) {
            std::vector<AExpr> USizes;
            for (unsigned D = 0; D != N; ++D)
              USizes.push_back(add(VSteps[D], sub(SizeE, StepE)));
            TiledComps.push_back(
                slideClampNd(N, USizes, VSteps, CompMatches[I]->Inner));
          } else {
            TiledComps.push_back(slideNd(N, U, V, CompMatches[I]->Inner));
          }
          IsSlided.push_back(true);
          continue;
        }
        TiledComps.push_back(Clamp
                                 ? slideClampNd(N, VSteps, VSteps,
                                                Z->Comps[I])
                                 : slideNd(N, K, K, Z->Comps[I]));
        IsSlided.push_back(false);
      }

      LambdaPtr F = M->F;
      bool Local = O.UseLocalMem;
      std::int64_t TC = O.TileCoarsen;
      LambdaPtr PerTile = lam("tile", [&](ExprPtr Tile) {
        std::vector<ExprPtr> Parts;
        for (std::size_t I = 0, E2 = IsSlided.size(); I != E2; ++I) {
          ExprPtr Part = get(int(I), Tile);
          if (IsSlided[I]) {
            if (Local)
              Part = buildLocalCopy(N, std::move(Part));
            Part = slideNd(N, SizeE, StepE, std::move(Part));
          }
          Parts.push_back(std::move(Part));
        }
        return buildMapNest(N, Prim::MapLcl, cloneLambda(F),
                            lift::stencil::zipNd(N, std::move(Parts)), TC);
      });
      Lowered = untileNd(
          N,
          buildMapNest(N, Prim::MapWrg, PerTile,
                       lift::stencil::zipNd(N, std::move(TiledComps))),
          Clamp ? OutExt : std::vector<AExpr>{});
    } else {
      return lowerFail(WhyNot,
                       "tiling requested but the input is neither a slideNd "
                       "neighborhood nor a zipNd of grids");
    }
  } else {
    Lowered = buildGlbNest(N, M->F, M->Input, O.Coarsen);
  }

  // Sequentialize all remaining high-level compute: reductions and any
  // compute maps inside the stencil function.
  Lowered = applyEverywhere(reduceToSeqRule(), Lowered, Dummy);
  Lowered = applyEverywhere(mapToSeqRule(), Lowered, Dummy);

  Program Result = makeProgram(Copy->getParams(), Lowered);
  inferTypes(Result);

  if (O.UnrollReduce) {
    int Unrolled = 0;
    ExprPtr NewBody =
        applyEverywhere(reduceUnrollRule(), Result->getBody(), Unrolled);
    Result = makeProgram(Result->getParams(), NewBody);
    inferTypes(Result);
  }
  return Result;
}

} // namespace

Program lift::rewrite::lowerStencil(const Program &P, const LoweringOptions &O,
                                    std::string *WhyNot) {
  obs::Span LowerSpan("lower", "rewrite");
  LowerSpan.arg("variant", O.describe());
  Program Result = lowerStencilImpl(P, O, WhyNot);
  obs::Registry &Reg = obs::Registry::global();
  if (Result)
    Reg.counter("rewrite.lowerings").inc();
  else
    Reg.counter("rewrite.lowerings_failed").inc();
  LowerSpan.arg("ok", std::int64_t(Result ? 1 : 0));
  return Result;
}
