//===- Rules.cpp - Rewrite rules over the Lift IR -----------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Rules.h"

#include "ir/TypeInference.h"
#include "obs/Metrics.h"
#include "support/Support.h"

#include <cassert>

using namespace lift;
using namespace lift::ir;
using namespace lift::rewrite;

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

/// Rebuilds a call with one argument replaced (payload copied).
static ExprPtr rebuildCall(const CallExpr &C, std::size_t ArgIdx,
                           ExprPtr NewArg) {
  std::vector<ExprPtr> Args = C.getArgs();
  Args[ArgIdx] = std::move(NewArg);
  auto NC = std::make_shared<CallExpr>(C.getPrim(), std::move(Args));
  NC->UF = C.UF;
  NC->Dim = C.Dim;
  NC->Factor = C.Factor;
  NC->Size = C.Size;
  NC->Step = C.Step;
  NC->PadL = C.PadL;
  NC->PadR = C.PadR;
  NC->Bdy = C.Bdy;
  NC->Index = C.Index;
  NC->IterCount = C.IterCount;
  NC->GenSizes = C.GenSizes;
  return NC;
}

/// Bumps the per-rule match/apply metrics ("rewrite.rule.match.<name>"
/// and "rewrite.rule.apply.<name>"). Counters are pure sums, so the
/// totals are identical for any tuner/simulator thread count. Called
/// once per engine entry point, never per node.
void lift::rewrite::noteRuleMatches(const Rule &R, int N) {
  if (N > 0)
    obs::Registry::global().counter("rewrite.rule.match." + R.Name).inc(
        std::uint64_t(N));
}

void lift::rewrite::noteRuleApplications(const Rule &R, int N) {
  if (N > 0)
    obs::Registry::global().counter("rewrite.rule.apply." + R.Name).inc(
        std::uint64_t(N));
}

static ExprPtr applyFirstRec(const Rule &R, const ExprPtr &E) {
  if (ExprPtr New = R.Apply(E))
    return New;
  switch (E->getKind()) {
  case Expr::Kind::Literal:
  case Expr::Kind::Param:
    return nullptr;
  case Expr::Kind::Lambda: {
    const auto *L = dynCast<LambdaExpr>(E);
    ExprPtr NewBody = applyFirstRec(R, L->getBody());
    if (!NewBody)
      return nullptr;
    return lambda(L->getParams(), std::move(NewBody), L->getAddrSpace());
  }
  case Expr::Kind::Call: {
    const auto *C = dynCast<CallExpr>(E);
    for (std::size_t I = 0, N = C->getArgs().size(); I != N; ++I) {
      if (ExprPtr NewArg = applyFirstRec(R, C->getArgs()[I]))
        return rebuildCall(*C, I, std::move(NewArg));
    }
    return nullptr;
  }
  }
  unreachable("covered switch");
}

ExprPtr lift::rewrite::applyFirst(const Rule &R, const ExprPtr &E) {
  ExprPtr New = applyFirstRec(R, E);
  if (New)
    noteRuleApplications(R, 1);
  return New;
}

static ExprPtr applyEverywhereRec(const Rule &R, const ExprPtr &E,
                                  int &Applications) {
  // Bottom-up: rewrite children first, then try the node itself.
  ExprPtr Cur = E;
  switch (E->getKind()) {
  case Expr::Kind::Literal:
  case Expr::Kind::Param:
    break;
  case Expr::Kind::Lambda: {
    const auto *L = dynCast<LambdaExpr>(E);
    ExprPtr NewBody = applyEverywhereRec(R, L->getBody(), Applications);
    if (NewBody.get() != L->getBody().get())
      Cur = lambda(L->getParams(), std::move(NewBody), L->getAddrSpace());
    break;
  }
  case Expr::Kind::Call: {
    const auto *C = dynCast<CallExpr>(E);
    for (std::size_t I = 0, N = C->getArgs().size(); I != N; ++I) {
      ExprPtr NewArg = applyEverywhereRec(R, C->getArgs()[I], Applications);
      if (NewArg.get() != C->getArgs()[I].get()) {
        Cur = rebuildCall(*dynCast<CallExpr>(Cur), I, std::move(NewArg));
      }
    }
    break;
  }
  }
  if (ExprPtr New = R.Apply(Cur)) {
    ++Applications;
    return New;
  }
  return Cur;
}

ExprPtr lift::rewrite::applyEverywhere(const Rule &R, const ExprPtr &E,
                                       int &Applications) {
  int Before = Applications;
  ExprPtr New = applyEverywhereRec(R, E, Applications);
  noteRuleApplications(R, Applications - Before);
  return New;
}

static int countMatchesRec(const Rule &R, const ExprPtr &E) {
  int Count = R.Apply(E) ? 1 : 0;
  switch (E->getKind()) {
  case Expr::Kind::Literal:
  case Expr::Kind::Param:
    return Count;
  case Expr::Kind::Lambda:
    return Count + countMatchesRec(R, dynCast<LambdaExpr>(E)->getBody());
  case Expr::Kind::Call: {
    for (const ExprPtr &A : dynCast<CallExpr>(E)->getArgs())
      Count += countMatchesRec(R, A);
    return Count;
  }
  }
  unreachable("covered switch");
}

int lift::rewrite::countMatches(const Rule &R, const ExprPtr &E) {
  int Count = countMatchesRec(R, E);
  noteRuleMatches(R, Count);
  return Count;
}

Program lift::rewrite::rewriteProgram(const Rule &R, const Program &P) {
  // Clone first so rewritten results never share mutable type state
  // with the original program; infer types so rules may inspect them
  // (e.g. reduceUnroll's constant-length requirement).
  Program Copy = cloneProgram(P);
  inferTypes(Copy);
  ExprPtr NewBody = applyFirst(R, Copy->getBody());
  if (!NewBody)
    return nullptr;
  Program Result = makeProgram(Copy->getParams(), std::move(NewBody));
  inferTypes(Result);
  return Result;
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

static LambdaPtr cloneLambda(const LambdaPtr &F) {
  return std::static_pointer_cast<LambdaExpr>(
      deepClone(std::static_pointer_cast<Expr>(F)));
}

static const CallExpr *asCallOf(const ExprPtr &E, Prim P) {
  const auto *C = dynCast<CallExpr>(E);
  return (C && C->getPrim() == P) ? C : nullptr;
}

static LambdaPtr lambdaOf(const CallExpr &C, std::size_t I = 0) {
  return std::static_pointer_cast<LambdaExpr>(C.getArgs()[I]);
}

bool lift::rewrite::isLayoutOnly(const ExprPtr &E) {
  switch (E->getKind()) {
  case Expr::Kind::Param:
    return true;
  case Expr::Kind::Literal:
  case Expr::Kind::Lambda:
    return false;
  case Expr::Kind::Call:
    break;
  }
  const auto *C = dynCast<CallExpr>(E);
  switch (C->getPrim()) {
  case Prim::Map: {
    const auto F = lambdaOf(*C);
    return isLayoutOnly(F->getBody()) && isLayoutOnly(C->getArgs()[1]);
  }
  case Prim::Generate:
    return true;
  case Prim::Zip:
  case Prim::Split:
  case Prim::Join:
  case Prim::Transpose:
  case Prim::Slide:
  case Prim::SlideClamp:
  case Prim::JoinClamp:
  case Prim::Pad:
  case Prim::At:
  case Prim::Get: {
    for (const ExprPtr &A : C->getArgs())
      if (!isLayoutOnly(A))
        return false;
    return true;
  }
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Pre-existing Lift rules
//===----------------------------------------------------------------------===//

Rule lift::rewrite::mapFusionRule() {
  Rule R;
  R.Name = "mapFusion";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const CallExpr *Outer = asCallOf(E, Prim::Map);
    if (!Outer)
      return nullptr;
    const CallExpr *Inner = asCallOf(Outer->getArgs()[1], Prim::Map);
    if (!Inner)
      return nullptr;
    LambdaPtr F = lambdaOf(*Outer);
    LambdaPtr G = lambdaOf(*Inner);
    // map(f, map(g, in)) -> map(\x. f(g(x)), in)
    LambdaPtr Fused = lam("x", [&](ExprPtr X) {
      ExprPtr GX = betaReduce(G, {X});
      std::unordered_map<const ParamExpr *, ExprPtr> Subst{
          {F->getParams()[0].get(), GX}};
      return substituteParams(F->getBody(), Subst);
    });
    return map(Fused, Inner->getArgs()[1]);
  };
  return R;
}

Rule lift::rewrite::splitJoinRule(AExpr ChunkSize) {
  Rule R;
  R.Name = "splitJoin";
  R.Apply = [ChunkSize](const ExprPtr &E) -> ExprPtr {
    const CallExpr *C = asCallOf(E, Prim::Map);
    if (!C)
      return nullptr;
    // split(m) requires m to divide the length; reject statically known
    // violations (symbolic lengths are the caller's obligation).
    const TypePtr &InTy = C->getArgs()[1]->getType();
    if (InTy && InTy->getKind() == Type::Kind::Array &&
        InTy->getSize()->getKind() == ArithExpr::Kind::Cst &&
        ChunkSize->getKind() == ArithExpr::Kind::Cst &&
        InTy->getSize()->getCst() % ChunkSize->getCst() != 0)
      return nullptr;
    LambdaPtr F = lambdaOf(*C);
    LambdaPtr PerChunk = lam("chunk", [&](ExprPtr Chunk) {
      return map(cloneLambda(F), Chunk);
    });
    return join(map(PerChunk, split(ChunkSize, C->getArgs()[1])));
  };
  return R;
}

Rule lift::rewrite::mapToSeqRule() {
  Rule R;
  R.Name = "mapToSeq";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const CallExpr *C = asCallOf(E, Prim::Map);
    if (!C)
      return nullptr;
    LambdaPtr F = lambdaOf(*C);
    // Layout-only maps stay high level: the view system absorbs them.
    if (isLayoutOnly(F->getBody()))
      return nullptr;
    return mapSeq(F, C->getArgs()[1]);
  };
  return R;
}

Rule lift::rewrite::reduceToSeqRule() {
  Rule R;
  R.Name = "reduceToSeq";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const CallExpr *C = asCallOf(E, Prim::Reduce);
    if (!C)
      return nullptr;
    return reduceSeq(lambdaOf(*C), C->getArgs()[1], C->getArgs()[2]);
  };
  return R;
}

Rule lift::rewrite::iterateExpandRule() {
  Rule R;
  R.Name = "iterateExpand";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const CallExpr *C = asCallOf(E, Prim::Iterate);
    if (!C)
      return nullptr;
    ExprPtr Result = C->getArgs()[1];
    LambdaPtr F = lambdaOf(*C);
    for (int I = 0; I != C->IterCount; ++I)
      Result = betaReduce(cloneLambda(F), {Result});
    return Result;
  };
  return R;
}

//===----------------------------------------------------------------------===//
// Simplification rules
//===----------------------------------------------------------------------===//

Rule lift::rewrite::transposeTransposeRule() {
  Rule R;
  R.Name = "transposeTranspose";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const CallExpr *Outer = asCallOf(E, Prim::Transpose);
    if (!Outer)
      return nullptr;
    const CallExpr *Inner = asCallOf(Outer->getArgs()[0], Prim::Transpose);
    if (!Inner)
      return nullptr;
    return Inner->getArgs()[0];
  };
  return R;
}

Rule lift::rewrite::joinSplitRule() {
  Rule R;
  R.Name = "joinSplit";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const CallExpr *J = asCallOf(E, Prim::Join);
    if (!J)
      return nullptr;
    const CallExpr *S = asCallOf(J->getArgs()[0], Prim::Split);
    if (!S)
      return nullptr;
    return S->getArgs()[0];
  };
  return R;
}

Rule lift::rewrite::splitJoinEliminationRule() {
  Rule R;
  R.Name = "splitJoinElimination";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const CallExpr *S = asCallOf(E, Prim::Split);
    if (!S)
      return nullptr;
    const CallExpr *J = asCallOf(S->getArgs()[0], Prim::Join);
    if (!J)
      return nullptr;
    // Only when the split factor equals the joined inner size.
    const TypePtr &InnerTy = J->getArgs()[0]->getType();
    if (!InnerTy || InnerTy->getKind() != Type::Kind::Array ||
        InnerTy->getElem()->getKind() != Type::Kind::Array)
      return nullptr;
    if (!exprEquals(InnerTy->getElem()->getSize(), S->Factor))
      return nullptr;
    return J->getArgs()[0];
  };
  return R;
}

Rule lift::rewrite::padPadMergeRule() {
  Rule R;
  R.Name = "padPadMerge";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const CallExpr *Outer = asCallOf(E, Prim::Pad);
    if (!Outer)
      return nullptr;
    const CallExpr *Inner = asCallOf(Outer->getArgs()[0], Prim::Pad);
    if (!Inner)
      return nullptr;
    bool SameKind = Outer->Bdy.K == Inner->Bdy.K;
    bool Mergeable =
        SameKind && (Outer->Bdy.K == Boundary::Kind::Clamp ||
                     (Outer->Bdy.K == Boundary::Kind::Constant &&
                      Outer->Bdy.ConstVal == Inner->Bdy.ConstVal));
    if (!Mergeable)
      return nullptr;
    return pad(add(Outer->PadL, Inner->PadL), add(Outer->PadR, Inner->PadR),
               Outer->Bdy, Inner->getArgs()[0]);
  };
  return R;
}

Rule lift::rewrite::mapIdEliminationRule() {
  Rule R;
  R.Name = "mapIdElimination";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const CallExpr *M = asCallOf(E, Prim::Map);
    if (!M)
      return nullptr;
    LambdaPtr F = lambdaOf(*M);
    const CallExpr *Body = asCallOf(F->getBody(), Prim::UserFunCall);
    if (!Body)
      return nullptr;
    bool IsId = Body->UF.get() == ufIdFloat().get() ||
                Body->UF.get() == ufIdInt().get();
    if (!IsId || Body->getArgs()[0].get() != F->getParams()[0].get())
      return nullptr;
    return M->getArgs()[1];
  };
  return R;
}

ExprPtr lift::rewrite::simplify(const ExprPtr &E) {
  const Rule Rules[] = {transposeTransposeRule(), joinSplitRule(),
                        splitJoinEliminationRule(), padPadMergeRule(),
                        mapIdEliminationRule()};
  ExprPtr Cur = E;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Rule &R : Rules) {
      int Applications = 0;
      Cur = applyEverywhere(R, Cur, Applications);
      Changed |= Applications != 0;
    }
  }
  return Cur;
}

//===----------------------------------------------------------------------===//
// Stencil-specific rules
//===----------------------------------------------------------------------===//

Rule lift::rewrite::tiling1DRule(std::int64_t TileOutputs) {
  Rule R;
  R.Name = "overlappedTiling1D";
  R.Apply = [TileOutputs](const ExprPtr &E) -> ExprPtr {
    const CallExpr *M = asCallOf(E, Prim::Map);
    if (!M)
      return nullptr;
    const CallExpr *S = asCallOf(M->getArgs()[1], Prim::Slide);
    if (!S)
      return nullptr;
    LambdaPtr F = lambdaOf(*M);
    // Validity (§4.1): u - v == size - step, and additionally the tile
    // step v must be a multiple of the window step so the windows
    // inside tiles line up with the untiled window grid.
    if (S->Step->getKind() == ArithExpr::Kind::Cst &&
        TileOutputs % S->Step->getCst() != 0)
      return nullptr;
    AExpr V = cst(TileOutputs);
    AExpr U = add(V, sub(S->Size, S->Step));
    // When the slided array's length is statically known, reject
    // parameter choices that do not tile it exactly ((len - u) % v must
    // be 0 and the tile must fit). With symbolic lengths this becomes
    // the caller's obligation (the tuner enforces it via divisibility
    // constraints).
    const TypePtr &InTy = S->getArgs()[0]->getType();
    if (InTy && InTy->getKind() == Type::Kind::Array &&
        InTy->getSize()->getKind() == ArithExpr::Kind::Cst &&
        U->getKind() == ArithExpr::Kind::Cst) {
      std::int64_t Len = InTy->getSize()->getCst();
      std::int64_t UC = U->getCst();
      if (Len < UC || (Len - UC) % TileOutputs != 0)
        return nullptr;
    }
    LambdaPtr PerTile = lam("tile", [&](ExprPtr Tile) {
      return map(cloneLambda(F), slide(S->Size, S->Step, Tile));
    });
    return join(map(PerTile, slide(U, V, S->getArgs()[0])));
  };
  return R;
}

Rule lift::rewrite::mapJoinRule() {
  Rule R;
  R.Name = "mapJoin";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const CallExpr *M = asCallOf(E, Prim::Map);
    if (!M)
      return nullptr;
    const CallExpr *J = asCallOf(M->getArgs()[1], Prim::Join);
    if (!J)
      return nullptr;
    LambdaPtr F = lambdaOf(*M);
    LambdaPtr MapF = lam("chunk", [&](ExprPtr Chunk) {
      return map(cloneLambda(F), Chunk);
    });
    return join(map(MapF, J->getArgs()[0]));
  };
  return R;
}

Rule lift::rewrite::slideTilingDecompositionRule(std::int64_t TileOutputs) {
  Rule R;
  R.Name = "slideTilingDecomposition";
  R.Apply = [TileOutputs](const ExprPtr &E) -> ExprPtr {
    const CallExpr *S = asCallOf(E, Prim::Slide);
    if (!S)
      return nullptr;
    AExpr V = cst(TileOutputs);
    AExpr U = add(V, sub(S->Size, S->Step));
    AExpr SizeE = S->Size;
    AExpr StepE = S->Step;
    LambdaPtr PerTile = lam("tile", [&](ExprPtr Tile) {
      return slide(SizeE, StepE, Tile);
    });
    return join(map(PerTile, slide(U, V, S->getArgs()[0])));
  };
  return R;
}

Rule lift::rewrite::reduceUnrollRule() {
  Rule R;
  R.Name = "reduceUnroll";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const CallExpr *C = asCallOf(E, Prim::ReduceSeq);
    if (!C)
      return nullptr;
    // Unrolling is only legal for compile-time constant lengths
    // (paper §4.3); requires inferred types.
    const TypePtr &InTy = C->getArgs()[2]->getType();
    if (!InTy || InTy->getKind() != Type::Kind::Array ||
        InTy->getSize()->getKind() != ArithExpr::Kind::Cst)
      return nullptr;
    return reduceSeqUnroll(lambdaOf(*C), C->getArgs()[1], C->getArgs()[2]);
  };
  return R;
}

/// True when \p F is (possibly a map nest over) the identity userfun.
static bool isIdLambda(const LambdaPtr &F) {
  const ExprPtr &Body = F->getBody();
  if (const auto *UFCall = dynCast<CallExpr>(Body)) {
    if (UFCall->getPrim() == Prim::UserFunCall)
      return UFCall->UF.get() == ufIdFloat().get() ||
             UFCall->UF.get() == ufIdInt().get();
    if (isMapPrim(UFCall->getPrim()) &&
        UFCall->getArgs()[1].get() == F->getParams()[0].get())
      return isIdLambda(
          std::static_pointer_cast<LambdaExpr>(UFCall->getArgs()[0]));
  }
  return false;
}

Rule lift::rewrite::toLocalRule() {
  Rule R;
  R.Name = "toLocal";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const auto *C = dynCast<CallExpr>(E);
    if (!C || !isMapPrim(C->getPrim()))
      return nullptr;
    LambdaPtr F = lambdaOf(*C);
    if (F->getAddrSpace() != AddrSpace::Default || !isIdLambda(F))
      return nullptr;
    return makeMapLike(C->getPrim(), C->Dim, toLocal(F), C->getArgs()[1]);
  };
  return R;
}

//===----------------------------------------------------------------------===//
// Structural matchers
//===----------------------------------------------------------------------===//

/// If E == mapAtDepth(D, transpose, X) for D >= 1, returns X.
/// \p ExpectedLeaf, when non-null, requires the transposed expression at
/// depth D to be exactly that node (used for matching lambda bodies).
static ExprPtr unwrapTransposeAtDepth(const ExprPtr &E, unsigned D,
                                      const Expr *ExpectedLeaf) {
  if (D == 0) {
    const CallExpr *T = asCallOf(E, Prim::Transpose);
    if (!T)
      return nullptr;
    if (ExpectedLeaf && T->getArgs()[0].get() != ExpectedLeaf)
      return nullptr;
    return T->getArgs()[0];
  }
  const CallExpr *M = asCallOf(E, Prim::Map);
  if (!M)
    return nullptr;
  LambdaPtr L = lambdaOf(*M);
  ExprPtr Inner = unwrapTransposeAtDepth(L->getBody(), D - 1,
                                         L->getParams()[0].get());
  if (!Inner)
    return nullptr;
  if (ExpectedLeaf && M->getArgs()[1].get() != ExpectedLeaf)
    return nullptr;
  return M->getArgs()[1];
}

std::optional<SlideNdMatch> lift::rewrite::matchSlideNd(const ExprPtr &E) {
  // 1D: a bare slide.
  if (const CallExpr *S = asCallOf(E, Prim::Slide)) {
    SlideNdMatch M;
    M.Dims = 1;
    M.Size = S->Size;
    M.Step = S->Step;
    M.Inner = S->getArgs()[0];
    return M;
  }
  // N >= 2: peel the transpose reordering stack (applied for depths
  // N-1 down to 1), then match slide(map(slideNd(N-1))).
  for (unsigned N = 3; N >= 2; --N) {
    ExprPtr Cur = E;
    bool Ok = true;
    for (unsigned D = N - 1; D >= 1 && Ok; --D) {
      ExprPtr Next = unwrapTransposeAtDepth(Cur, D, nullptr);
      if (!Next)
        Ok = false;
      else
        Cur = Next;
    }
    if (!Ok)
      continue;
    const CallExpr *S = asCallOf(Cur, Prim::Slide);
    if (!S)
      continue;
    const CallExpr *RowMap = asCallOf(S->getArgs()[0], Prim::Map);
    if (!RowMap)
      continue;
    LambdaPtr RowF = lambdaOf(*RowMap);
    std::optional<SlideNdMatch> Inner = matchSlideNd(RowF->getBody());
    if (!Inner || Inner->Dims != N - 1 ||
        Inner->Inner.get() != RowF->getParams()[0].get() ||
        !exprEquals(Inner->Size, S->Size) ||
        !exprEquals(Inner->Step, S->Step))
      continue;
    SlideNdMatch M;
    M.Dims = N;
    M.Size = S->Size;
    M.Step = S->Step;
    M.Inner = RowMap->getArgs()[1];
    return M;
  }
  return std::nullopt;
}

std::optional<ZipNdMatch> lift::rewrite::matchZipNd(const ExprPtr &E,
                                                    unsigned Dims) {
  if (Dims == 1) {
    const CallExpr *Z = asCallOf(E, Prim::Zip);
    if (!Z)
      return std::nullopt;
    ZipNdMatch M;
    M.Comps = Z->getArgs();
    return M;
  }
  // zip_n = map(\t. zip_{n-1}(t.0, t.1, ...), zip(comps)).
  const CallExpr *Outer = asCallOf(E, Prim::Map);
  if (!Outer)
    return std::nullopt;
  const CallExpr *Z = asCallOf(Outer->getArgs()[1], Prim::Zip);
  if (!Z)
    return std::nullopt;
  LambdaPtr L = lambdaOf(*Outer);
  std::optional<ZipNdMatch> Inner = matchZipNd(L->getBody(), Dims - 1);
  if (!Inner || Inner->Comps.size() != Z->getArgs().size())
    return std::nullopt;
  // The inner zip must re-zip exactly get(i, t) in component order.
  for (std::size_t I = 0, N = Inner->Comps.size(); I != N; ++I) {
    const CallExpr *G = asCallOf(Inner->Comps[I], Prim::Get);
    if (!G || G->Index != int(I) ||
        G->getArgs()[0].get() != L->getParams()[0].get())
      return std::nullopt;
  }
  ZipNdMatch M;
  M.Comps = Z->getArgs();
  return M;
}

std::optional<MapNdMatch> lift::rewrite::matchMapNd(const ExprPtr &E) {
  const CallExpr *M = asCallOf(E, Prim::Map);
  if (!M)
    return std::nullopt;
  LambdaPtr L = lambdaOf(*M);
  // Is the body itself a map over exactly the parameter?
  if (const CallExpr *InnerMap = asCallOf(L->getBody(), Prim::Map)) {
    if (InnerMap->getArgs()[1].get() == L->getParams()[0].get()) {
      std::optional<MapNdMatch> Inner = matchMapNd(L->getBody());
      if (Inner) {
        MapNdMatch Result;
        Result.Dims = Inner->Dims + 1;
        Result.F = Inner->F;
        Result.Input = M->getArgs()[1];
        return Result;
      }
    }
  }
  MapNdMatch Result;
  Result.Dims = 1;
  Result.F = L;
  Result.Input = M->getArgs()[1];
  return Result;
}
