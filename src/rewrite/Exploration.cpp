//===- Exploration.cpp - Automatic rewrite-space exploration ------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Exploration.h"

#include "ir/StructuralHash.h"
#include "ir/TypeInference.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <deque>
#include <unordered_set>

using namespace lift;
using namespace lift::ir;
using namespace lift::rewrite;

namespace {

/// Applies R at the Occurrence-th match; decrements Occurrence as
/// matches are passed. Returns nullptr if not enough matches.
ExprPtr applyAtRec(const Rule &R, const ExprPtr &E, int &Occurrence) {
  if (ExprPtr New = R.Apply(E)) {
    if (Occurrence == 0)
      return New;
    --Occurrence;
    // Fall through: also search the children of this (unrewritten)
    // node for later occurrences.
  }
  switch (E->getKind()) {
  case Expr::Kind::Literal:
  case Expr::Kind::Param:
    return nullptr;
  case Expr::Kind::Lambda: {
    const auto *L = dynCast<LambdaExpr>(E);
    ExprPtr NewBody = applyAtRec(R, L->getBody(), Occurrence);
    if (!NewBody)
      return nullptr;
    return lambda(L->getParams(), std::move(NewBody), L->getAddrSpace());
  }
  case Expr::Kind::Call: {
    const auto *C = dynCast<CallExpr>(E);
    for (std::size_t I = 0, N = C->getArgs().size(); I != N; ++I) {
      ExprPtr NewArg = applyAtRec(R, C->getArgs()[I], Occurrence);
      if (!NewArg)
        continue;
      std::vector<ExprPtr> Args = C->getArgs();
      Args[I] = std::move(NewArg);
      auto NC = std::make_shared<CallExpr>(C->getPrim(), std::move(Args));
      NC->UF = C->UF;
      NC->Dim = C->Dim;
      NC->Factor = C->Factor;
      NC->Size = C->Size;
      NC->Step = C->Step;
      NC->PadL = C->PadL;
      NC->PadR = C->PadR;
      NC->Bdy = C->Bdy;
      NC->Index = C->Index;
      NC->IterCount = C->IterCount;
      NC->GenSizes = C->GenSizes;
      return NC;
    }
    return nullptr;
  }
  }
  return nullptr;
}

} // namespace

ExprPtr lift::rewrite::applyAtOccurrence(const Rule &R, const ExprPtr &E,
                                         int Occurrence) {
  int Remaining = Occurrence;
  ExprPtr New = applyAtRec(R, E, Remaining);
  if (New)
    noteRuleApplications(R, 1);
  return New;
}

std::vector<ApplicableRewrite>
lift::rewrite::enumerateApplicableRewrites(const Program &P,
                                           const std::vector<Rule> &Rules) {
  // The original result type is the preservation contract: a rewrite
  // that changes it (or breaks typing altogether) is not legal here,
  // even if the rule matched syntactically.
  Program Reference = cloneProgram(P);
  TypePtr WantedT = tryInferTypes(Reference);
  if (!WantedT)
    return {};

  std::vector<ApplicableRewrite> Out;
  for (std::size_t RI = 0, RN = Rules.size(); RI != RN; ++RI) {
    int Matches = countMatches(Rules[RI], Reference->getBody());
    for (int Occ = 0; Occ != Matches; ++Occ) {
      ExprPtr NewBody =
          applyAtOccurrence(Rules[RI], Reference->getBody(), Occ);
      if (!NewBody)
        continue;
      Program Candidate =
          cloneProgram(makeProgram(Reference->getParams(), NewBody));
      TypePtr GotT = tryInferTypes(Candidate);
      if (!GotT || !typeEquals(GotT, WantedT))
        continue;
      Out.push_back(ApplicableRewrite{RI, Occ});
    }
  }
  return Out;
}

Program lift::rewrite::applyRewrite(const Program &P,
                                    const std::vector<Rule> &Rules,
                                    const ApplicableRewrite &Step) {
  if (Step.RuleIndex >= Rules.size())
    fatalError("applyRewrite: rule index out of range");
  Program Copy = cloneProgram(P);
  inferTypes(Copy);
  ExprPtr NewBody =
      applyAtOccurrence(Rules[Step.RuleIndex], Copy->getBody(),
                        Step.Occurrence);
  if (!NewBody)
    fatalError("applyRewrite: step does not apply to this program");
  Program Result =
      cloneProgram(makeProgram(Copy->getParams(), NewBody));
  inferTypes(Result);
  return Result;
}

std::vector<Rule> lift::rewrite::stencilExplorationRules() {
  std::vector<Rule> Rules;
  Rules.push_back(mapFusionRule());
  for (std::int64_t V : {4, 8})
    Rules.push_back(tiling1DRule(V));
  for (std::int64_t M : {2, 4})
    Rules.push_back(splitJoinRule(cst(M)));
  Rules.push_back(joinSplitRule());
  Rules.push_back(mapIdEliminationRule());
  Rules.push_back(padPadMergeRule());
  return Rules;
}

std::vector<Derivation> lift::rewrite::explore(const Program &Start,
                                               const std::vector<Rule> &Rules,
                                               const ExplorationOptions &O) {
  obs::Span ExploreSpan("explore", "rewrite");
  ExploreSpan.arg("rules", std::int64_t(Rules.size()));
  ExploreSpan.arg("max_depth", std::int64_t(O.MaxDepth));
  ExploreSpan.arg("max_programs", std::int64_t(O.MaxPrograms));
  obs::Registry &Reg = obs::Registry::global();
  obs::Counter &ProgramCount = Reg.counter("rewrite.explore.programs");
  // Structural-hash dedup hits: candidates rediscovered through a
  // different derivation and rejected by the Seen probe.
  obs::Counter &DedupHits = Reg.counter("rewrite.explore.dedup_hits");
  obs::Gauge &Frontier = Reg.gauge("rewrite.explore.frontier");
  obs::Gauge &MaxFrontier = Reg.gauge("rewrite.explore.frontier_peak");
  double FrontierPeak = 0;

  std::vector<Derivation> Result;
  // Candidate programs are deduplicated by alpha-invariant structural
  // hash and equality (ir/StructuralHash.h): no program is ever printed
  // on this path. The set is only probed for membership, never
  // iterated, so its (hash-dependent) internal order cannot influence
  // the result.
  std::unordered_set<ExprPtr, StructuralExprHash, StructuralExprEq> Seen;

  struct WorkItem {
    Program P;
    std::vector<std::string> Applied;
    int Depth;
  };
  std::deque<WorkItem> Queue;

  Program First = cloneProgram(Start);
  inferTypes(First);
  Seen.insert(First);
  Result.push_back(Derivation{First, {}});
  Queue.push_back(WorkItem{First, {}, 0});
  ProgramCount.inc();

  auto FinishSpan = [&] {
    MaxFrontier.set(FrontierPeak);
    Frontier.set(0);
    ExploreSpan.arg("programs", std::int64_t(Result.size()));
  };

  while (!Queue.empty() && int(Result.size()) < O.MaxPrograms) {
    FrontierPeak = std::max(FrontierPeak, double(Queue.size()));
    Frontier.set(double(Queue.size()));
    WorkItem Item = std::move(Queue.front());
    Queue.pop_front();
    if (Item.Depth >= O.MaxDepth)
      continue;

    for (const Rule &R : Rules) {
      int Matches = countMatches(R, Item.P->getBody());
      for (int Occ = 0; Occ != Matches; ++Occ) {
        ExprPtr NewBody = applyAtOccurrence(R, Item.P->getBody(), Occ);
        if (!NewBody)
          continue;
        Program Candidate = makeProgram(Item.P->getParams(), NewBody);
        // Probe the dedup set before paying for a deep clone and type
        // inference: structural equality is alpha-invariant, so the
        // raw candidate (still sharing subtrees with its parent) is an
        // equivalent key, and duplicates — the common case in a
        // saturating search — cost only a hash and a comparison.
        if (Seen.find(Candidate) != Seen.end()) {
          DedupHits.inc();
          continue;
        }
        // Clone so derivations never share mutable type state.
        Candidate = cloneProgram(Candidate);
        // Types let rules check static validity constraints (e.g. the
        // tiling rule's exact-fit requirement on constant lengths). A
        // rule that fired on a shape it cannot legally transform
        // produces an ill-typed candidate; drop it instead of dying.
        if (!tryInferTypes(Candidate))
          continue;
        Seen.insert(Candidate);
        std::vector<std::string> Applied = Item.Applied;
        Applied.push_back(R.Name);
        Result.push_back(Derivation{Candidate, Applied});
        ProgramCount.inc();
        Queue.push_back(
            WorkItem{Candidate, std::move(Applied), Item.Depth + 1});
        if (int(Result.size()) >= O.MaxPrograms) {
          FinishSpan();
          return Result;
        }
      }
    }
  }
  FinishSpan();
  return Result;
}
