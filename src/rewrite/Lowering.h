//===- Lowering.h - High-level to OpenCL-level lowering --------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Macro-rules that compose the rewrite rules of Rules.h into complete
/// OpenCL-level implementations — the role of Lift's exploration
/// strategies. One high-level stencil program yields a family of
/// low-level variants differing in:
///
///  * overlapped tiling on/off and the tile size (paper §4.1),
///  * staging tiles in local memory (paper §4.2),
///  * sequential work per thread (split-join thread coarsening),
///  * reduction unrolling (paper §4.3).
///
/// The auto-tuner (src/tuner) searches this space per device, exactly
/// as the paper tunes each benchmark per platform.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_REWRITE_LOWERING_H
#define LIFT_REWRITE_LOWERING_H

#include "rewrite/Rules.h"

#include <vector>

namespace lift {
namespace rewrite {

/// One point in the implementation space.
struct LoweringOptions {
  /// Apply the overlapped-tiling rule and map tiles to work-groups.
  bool Tile = false;
  /// Outputs per tile per dimension (the v of the tiling rule); the
  /// tile extent is u = v + size - step.
  std::int64_t TileOutputs = 16;
  /// Stage each tile into local memory with a cooperative copy.
  bool UseLocalMem = false;
  /// Unroll constant-length reductions.
  bool UnrollReduce = false;
  /// Elements each thread computes sequentially along the innermost
  /// dimension (1 = one element per thread). Untiled variants only.
  std::int64_t Coarsen = 1;
  /// Sequential outputs per thread along the innermost dimension
  /// *inside a tile* (tiled variants only). This is how PPCG-style
  /// schedules with blocks smaller than tiles are expressed: each
  /// thread walks TileCoarsen points of its tile.
  std::int64_t TileCoarsen = 1;

  /// Concrete per-dimension *output* extents (outermost first) the
  /// lowered program will run at, when the caller knows them. Refines
  /// symbolic output dimensions so the clamped tiling scheme can clamp
  /// the per-dimension tile to a short extent (e.g. a 16-output tile
  /// on a 4-deep dimension becomes one 4-output tile) — without this,
  /// tiled lowerings of symbolic programs carry the validity
  /// precondition extent >= TileOutputs. Empty: keep symbolic extents.
  /// Does not participate in describe().
  std::vector<std::int64_t> OutputExtents;

  /// e.g. "tiled16-local-unroll" / "global-coarsen4".
  std::string describe() const;
};

/// Lowers a canonical stencil program (a mapNd nest, optionally over
/// slideNd/zip structures) into a low-level program per \p O. Returns
/// nullptr when the options do not apply to this program's shape
/// (e.g. tiling requested but no slideNd at the top, or zip components
/// with mixed window geometries); in that case \p WhyNot — when
/// non-null — receives a human-readable reason callers must surface
/// instead of dereferencing the null program.
ir::Program lowerStencil(const ir::Program &P, const LoweringOptions &O,
                         std::string *WhyNot = nullptr);

} // namespace rewrite
} // namespace lift

#endif // LIFT_REWRITE_LOWERING_H
