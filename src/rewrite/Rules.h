//===- Rules.h - Rewrite rules over the Lift IR ----------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rewrite-rule engine: semantics-preserving transformations that
/// define Lift's optimization space (paper §4). Every rule is a partial
/// function on expressions; the engine applies rules at arbitrary
/// positions. The stencil-specific addition is the overlapped-tiling
/// rule (§4.1):
///
///   map(f, slide(size, step, in)) |->
///     join(map(tile => map(f, slide(size, step, tile)),
///              slide(u, v, in)))        with  size - step == u - v
///
/// together with its multi-dimensional generalization, the local-memory
/// rule map(id) -> toLocal(map(id)) (§4.2), loop unrolling via
/// reduceSeqUnroll (§4.3), and Lift's pre-existing rules (map fusion,
/// split-join, sequential lowering) that stencils inherit.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_REWRITE_RULES_H
#define LIFT_REWRITE_RULES_H

#include "ir/Expr.h"

#include <functional>
#include <optional>
#include <string>

namespace lift {
namespace rewrite {

/// A named, semantics-preserving rewrite. Apply returns the rewritten
/// expression when the rule matches at this node, nullptr otherwise.
struct Rule {
  std::string Name;
  std::function<ir::ExprPtr(const ir::ExprPtr &)> Apply;
};

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

/// Applies \p R at the first matching position (pre-order); returns the
/// rewritten tree, or nullptr when the rule matched nowhere. The input
/// is not mutated; matching subtrees are rebuilt.
ir::ExprPtr applyFirst(const Rule &R, const ir::ExprPtr &E);

/// Applies \p R at every matching position in one bottom-up pass.
/// Returns the (possibly unchanged) rebuilt tree and reports the number
/// of applications through \p Applications.
ir::ExprPtr applyEverywhere(const Rule &R, const ir::ExprPtr &E,
                            int &Applications);

/// Counts positions where \p R matches.
int countMatches(const Rule &R, const ir::ExprPtr &E);

/// Metric hooks shared by the engine entry points: every successful
/// match scan / application bumps the per-rule
/// "rewrite.rule.{match,apply}.<name>" counters in the metrics
/// registry (obs/Metrics.h). Exposed so out-of-line appliers (e.g.
/// exploration's applyAtOccurrence) report through the same counters.
void noteRuleMatches(const Rule &R, int N);
void noteRuleApplications(const Rule &R, int N);

/// Rewrites a program body with applyFirst; returns a fresh program
/// (inputs shared) or nullptr if the rule matched nowhere. The result
/// has types re-inferred.
ir::Program rewriteProgram(const Rule &R, const ir::Program &P);

//===----------------------------------------------------------------------===//
// Lift's pre-existing rules (paper §3.1 machinery)
//===----------------------------------------------------------------------===//

/// map(f, map(g, in)) -> map(\x. f(g(x)), in)
Rule mapFusionRule();

/// map(f, in) -> join(map(map(f), split(m, in)))
Rule splitJoinRule(AExpr ChunkSize);

/// map -> mapSeq on compute maps (leaves layout-only maps to the view
/// system).
Rule mapToSeqRule();

/// reduce -> reduceSeq
Rule reduceToSeqRule();

/// iterate(k, f, in) -> f(f(...f(in)...)) by beta reduction.
Rule iterateExpandRule();

//===----------------------------------------------------------------------===//
// Simplification rules (Lift's algebraic identities)
//===----------------------------------------------------------------------===//

/// transpose(transpose(e)) -> e
Rule transposeTransposeRule();

/// join(split(m, e)) -> e
Rule joinSplitRule();

/// split(m, join(e)) -> e when e's inner dimension has size m.
/// Requires inferred types.
Rule splitJoinEliminationRule();

/// pad(l1, r1, B, pad(l2, r2, B, e)) -> pad(l1+l2, r1+r2, B, e) for
/// boundaries where padding twice equals padding once (Clamp, and
/// Constant with equal values). Mirror/Wrap re-reflect and are not
/// merged.
Rule padPadMergeRule();

/// map(\x. id(x), e) -> e
Rule mapIdEliminationRule();

/// Applies all simplification rules bottom-up until a fixed point.
ir::ExprPtr simplify(const ir::ExprPtr &E);

//===----------------------------------------------------------------------===//
// Stencil-specific rules (paper §4)
//===----------------------------------------------------------------------===//

/// The 1D overlapped-tiling rule (§4.1). \p TileOutputs is v, the
/// number of outputs each tile produces; the tile width is
/// u = v + size - step, satisfying the rule's validity constraint.
Rule tiling1DRule(std::int64_t TileOutputs);

/// First half of the paper's correctness decomposition of the tiling
/// rule (§4.1): map(f, join(in)) -> join(map(map(f), in)).
Rule mapJoinRule();

/// Second half of the decomposition (§4.1):
/// slide(size, step, in) -> join(map(slide(size, step), slide(u, v, in)))
/// with u - v == size - step. Composing mapJoinRule with this rule
/// yields exactly tiling1DRule — tested in SimplifyTest.
Rule slideTilingDecompositionRule(std::int64_t TileOutputs);

/// reduceSeq -> reduceSeqUnroll (§4.3); legal when the reduced array
/// has a compile-time constant length.
Rule reduceUnrollRule();

/// map(id-function, x) -> toLocal(map(id))(x): marks an identity copy
/// to be placed in local memory (§4.2). Matches map-family calls whose
/// function is the eta-expanded identity with default address space.
Rule toLocalRule();

//===----------------------------------------------------------------------===//
// Structural matchers for canonical stencil shapes
//===----------------------------------------------------------------------===//

/// Match result for the slideNd-produced neighborhood expression.
struct SlideNdMatch {
  unsigned Dims = 0;
  AExpr Size, Step;
  ir::ExprPtr Inner; ///< the (padded) input underneath
};

/// Recognizes the expression trees produced by stencil::slideNd.
std::optional<SlideNdMatch> matchSlideNd(const ir::ExprPtr &E);

/// Match result for a mapNd nest.
struct MapNdMatch {
  unsigned Dims = 0;
  ir::LambdaPtr F;   ///< innermost (stencil) function
  ir::ExprPtr Input; ///< the mapped data expression
};

/// Recognizes map nests produced by stencil::mapNd: n nested maps where
/// each intermediate lambda body is a single map over its parameter.
std::optional<MapNdMatch> matchMapNd(const ir::ExprPtr &E);

/// Match result for zipNd-produced multi-grid inputs.
struct ZipNdMatch {
  std::vector<ir::ExprPtr> Comps; ///< the zipped n-dimensional arrays
};

/// Recognizes the trees produced by stencil::zipNd over \p Dims
/// dimensions and returns the component arrays.
std::optional<ZipNdMatch> matchZipNd(const ir::ExprPtr &E, unsigned Dims);

/// True when \p E consists only of layout primitives, parameters,
/// generators and layout-only maps (no user functions or reductions).
bool isLayoutOnly(const ir::ExprPtr &E);

} // namespace rewrite
} // namespace lift

#endif // LIFT_REWRITE_RULES_H
