//===- Exploration.h - Automatic rewrite-space exploration -----*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automatic exploration of the rewrite space (paper §1: "optimizations
/// are all encoded as formal, semantics-preserving rewrite rules. These
/// rules define an optimization space which is automatically searched").
///
/// Starting from one high-level program, exploration repeatedly applies
/// every rule of a rule set at every matching position, collecting the
/// distinct programs reachable within a depth bound. Each reachable
/// program is a semantically equal implementation candidate; the
/// deterministic lowering strategies (Lowering.h) are the
/// production-path shortcut through this same space, and the test suite
/// checks that exploration rediscovers their shapes (tiled and untiled)
/// from the unannotated program.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_REWRITE_EXPLORATION_H
#define LIFT_REWRITE_EXPLORATION_H

#include "rewrite/Rules.h"

namespace lift {
namespace rewrite {

/// Exploration limits.
struct ExplorationOptions {
  int MaxDepth = 3;       ///< rule applications per derivation
  int MaxPrograms = 256;  ///< total distinct programs to keep
};

/// One point in the explored space.
struct Derivation {
  ir::Program P;
  std::vector<std::string> RulesApplied; ///< names, in application order
};

/// Explores the space reachable from \p Start by the given rules.
/// Rules are applied one position at a time (every matching position
/// spawns a new derivation). Programs are deduplicated by
/// alpha-invariant structural hash and equality (ir/StructuralHash.h);
/// no candidate is ever printed. The result always contains \p Start
/// itself as the first derivation.
///
/// Determinism contract: derivations are discovered breadth-first and
/// appended in a fixed total order — lexicographic by (depth, discovery
/// order of the parent derivation, index of the rule in \p Rules,
/// occurrence position of the match, pre-order). When MaxPrograms cuts
/// the search off, exactly the first MaxPrograms derivations of that
/// order are returned: explore() with a smaller budget yields a prefix
/// of explore() with a larger one, independent of the dedup set's
/// internal iteration order (which is never observed).
std::vector<Derivation> explore(const ir::Program &Start,
                                const std::vector<Rule> &Rules,
                                const ExplorationOptions &O);

/// The stencil exploration rule set used by the paper: map fusion,
/// overlapped tiling with a few tile sizes, split-join with a few
/// chunk sizes, plus the simplification rules keeping the space small.
std::vector<Rule> stencilExplorationRules();

/// Applies \p R at the \p Occurrence-th matching position (0-based,
/// pre-order); nullptr when there is no such position. The building
/// block that lets exploration branch on positions, not just rules.
ir::ExprPtr applyAtOccurrence(const Rule &R, const ir::ExprPtr &E,
                              int Occurrence);

/// One legal rewrite step on a specific program: rule \p RuleIndex of
/// a rule set applied at pre-order match position \p Occurrence.
struct ApplicableRewrite {
  std::size_t RuleIndex;
  int Occurrence;
};

/// Enumerates every (rule, occurrence) pair of \p Rules that applies
/// to \p P and yields a well-typed program of the *same result type* —
/// candidates whose rewritten body fails type inference (a rule fired
/// on a shape it cannot legally transform) or changes the program type
/// are filtered out. The order is deterministic: by rule index, then
/// occurrence. This is the fuzzer's source of random-but-legal rewrite
/// sequences.
std::vector<ApplicableRewrite>
enumerateApplicableRewrites(const ir::Program &P,
                            const std::vector<Rule> &Rules);

/// Applies one enumerated step, returning a fresh type-checked program
/// (the input is never mutated). Fatal if \p Step does not come from
/// enumerateApplicableRewrites on this same program and rule set.
ir::Program applyRewrite(const ir::Program &P, const std::vector<Rule> &Rules,
                         const ApplicableRewrite &Step);

} // namespace rewrite
} // namespace lift

#endif // LIFT_REWRITE_EXPLORATION_H
