# Empty compiler generated dependencies file for acoustic_simulation.
# This may be replaced when dependencies are built.
