file(REMOVE_RECURSE
  "CMakeFiles/acoustic_simulation.dir/acoustic_simulation.cpp.o"
  "CMakeFiles/acoustic_simulation.dir/acoustic_simulation.cpp.o.d"
  "acoustic_simulation"
  "acoustic_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acoustic_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
