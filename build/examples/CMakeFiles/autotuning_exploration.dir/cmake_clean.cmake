file(REMOVE_RECURSE
  "CMakeFiles/autotuning_exploration.dir/autotuning_exploration.cpp.o"
  "CMakeFiles/autotuning_exploration.dir/autotuning_exploration.cpp.o.d"
  "autotuning_exploration"
  "autotuning_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotuning_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
