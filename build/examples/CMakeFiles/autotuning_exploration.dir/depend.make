# Empty dependencies file for autotuning_exploration.
# This may be replaced when dependencies are built.
