file(REMOVE_RECURSE
  "CMakeFiles/ir_test.dir/ExprTest.cpp.o"
  "CMakeFiles/ir_test.dir/ExprTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/TypeErrorsTest.cpp.o"
  "CMakeFiles/ir_test.dir/TypeErrorsTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/TypeInferenceTest.cpp.o"
  "CMakeFiles/ir_test.dir/TypeInferenceTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/TypesTest.cpp.o"
  "CMakeFiles/ir_test.dir/TypesTest.cpp.o.d"
  "ir_test"
  "ir_test.pdb"
  "ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
