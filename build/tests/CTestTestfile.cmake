# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(liftc_list "/root/repo/build/tools/liftc" "list")
set_tests_properties(liftc_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(liftc_show "/root/repo/build/tools/liftc" "show" "Jacobi2D5pt")
set_tests_properties(liftc_show PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(liftc_emit_tiled "/root/repo/build/tools/liftc" "emit" "Gaussian" "--tile" "16" "--local")
set_tests_properties(liftc_emit_tiled PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(liftc_analyze "/root/repo/build/tools/liftc" "analyze" "Heat")
set_tests_properties(liftc_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(liftc_run "/root/repo/build/tools/liftc" "run" "Stencil2D" "--extents" "64,64" "--unroll")
set_tests_properties(liftc_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(liftc_run_tiled_zip "/root/repo/build/tools/liftc" "run" "Hotspot2D" "--tile" "16" "--local" "--extents" "64,64")
set_tests_properties(liftc_run_tiled_zip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
subdirs("arith")
subdirs("ir")
subdirs("interp")
subdirs("codegen")
subdirs("rewrite")
subdirs("stencil")
subdirs("tuner")
subdirs("ocl")
subdirs("support")
subdirs("baselines")
