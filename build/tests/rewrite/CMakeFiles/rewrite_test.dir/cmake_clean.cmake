file(REMOVE_RECURSE
  "CMakeFiles/rewrite_test.dir/ExplorationTest.cpp.o"
  "CMakeFiles/rewrite_test.dir/ExplorationTest.cpp.o.d"
  "CMakeFiles/rewrite_test.dir/LoweringTest.cpp.o"
  "CMakeFiles/rewrite_test.dir/LoweringTest.cpp.o.d"
  "CMakeFiles/rewrite_test.dir/RulesTest.cpp.o"
  "CMakeFiles/rewrite_test.dir/RulesTest.cpp.o.d"
  "CMakeFiles/rewrite_test.dir/SimplifyTest.cpp.o"
  "CMakeFiles/rewrite_test.dir/SimplifyTest.cpp.o.d"
  "rewrite_test"
  "rewrite_test.pdb"
  "rewrite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
