file(REMOVE_RECURSE
  "CMakeFiles/codegen_test.dir/AccessAnalysisTest.cpp.o"
  "CMakeFiles/codegen_test.dir/AccessAnalysisTest.cpp.o.d"
  "CMakeFiles/codegen_test.dir/CodeGenTest.cpp.o"
  "CMakeFiles/codegen_test.dir/CodeGenTest.cpp.o.d"
  "CMakeFiles/codegen_test.dir/EmitterTest.cpp.o"
  "CMakeFiles/codegen_test.dir/EmitterTest.cpp.o.d"
  "CMakeFiles/codegen_test.dir/FuzzViewsTest.cpp.o"
  "CMakeFiles/codegen_test.dir/FuzzViewsTest.cpp.o.d"
  "CMakeFiles/codegen_test.dir/GoldenKernelTest.cpp.o"
  "CMakeFiles/codegen_test.dir/GoldenKernelTest.cpp.o.d"
  "CMakeFiles/codegen_test.dir/ViewTest.cpp.o"
  "CMakeFiles/codegen_test.dir/ViewTest.cpp.o.d"
  "codegen_test"
  "codegen_test.pdb"
  "codegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
