
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/interp/InterpreterTest.cpp" "tests/interp/CMakeFiles/interp_test.dir/InterpreterTest.cpp.o" "gcc" "tests/interp/CMakeFiles/interp_test.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/interp/PaperExamplesTest.cpp" "tests/interp/CMakeFiles/interp_test.dir/PaperExamplesTest.cpp.o" "gcc" "tests/interp/CMakeFiles/interp_test.dir/PaperExamplesTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/lift_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/lift_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lift_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/lift_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
