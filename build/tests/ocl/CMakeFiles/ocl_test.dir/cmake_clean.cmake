file(REMOVE_RECURSE
  "CMakeFiles/ocl_test.dir/DeviceTest.cpp.o"
  "CMakeFiles/ocl_test.dir/DeviceTest.cpp.o.d"
  "CMakeFiles/ocl_test.dir/SimTest.cpp.o"
  "CMakeFiles/ocl_test.dir/SimTest.cpp.o.d"
  "ocl_test"
  "ocl_test.pdb"
  "ocl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
