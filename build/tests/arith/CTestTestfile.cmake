# CMake generated Testfile for 
# Source directory: /root/repo/tests/arith
# Build directory: /root/repo/build/tests/arith
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/arith/arith_test[1]_include.cmake")
