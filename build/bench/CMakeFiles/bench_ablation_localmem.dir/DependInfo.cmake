
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_localmem.cpp" "bench/CMakeFiles/bench_ablation_localmem.dir/bench_ablation_localmem.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_localmem.dir/bench_ablation_localmem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuner/CMakeFiles/lift_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lift_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/lift_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/lift_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/lift_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/lift_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lift_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/lift_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
