file(REMOVE_RECURSE
  "CMakeFiles/bench_figure7.dir/bench_figure7.cpp.o"
  "CMakeFiles/bench_figure7.dir/bench_figure7.cpp.o.d"
  "bench_figure7"
  "bench_figure7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
