file(REMOVE_RECURSE
  "CMakeFiles/bench_rewrite_engine.dir/bench_rewrite_engine.cpp.o"
  "CMakeFiles/bench_rewrite_engine.dir/bench_rewrite_engine.cpp.o.d"
  "bench_rewrite_engine"
  "bench_rewrite_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewrite_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
