# Empty dependencies file for liftc.
# This may be replaced when dependencies are built.
