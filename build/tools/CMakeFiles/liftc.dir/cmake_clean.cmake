file(REMOVE_RECURSE
  "CMakeFiles/liftc.dir/liftc.cpp.o"
  "CMakeFiles/liftc.dir/liftc.cpp.o.d"
  "liftc"
  "liftc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liftc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
