file(REMOVE_RECURSE
  "CMakeFiles/lift_stencil.dir/Benchmarks.cpp.o"
  "CMakeFiles/lift_stencil.dir/Benchmarks.cpp.o.d"
  "CMakeFiles/lift_stencil.dir/StencilOps.cpp.o"
  "CMakeFiles/lift_stencil.dir/StencilOps.cpp.o.d"
  "liblift_stencil.a"
  "liblift_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
