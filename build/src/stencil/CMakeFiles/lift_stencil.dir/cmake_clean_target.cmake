file(REMOVE_RECURSE
  "liblift_stencil.a"
)
