# Empty dependencies file for lift_stencil.
# This may be replaced when dependencies are built.
