file(REMOVE_RECURSE
  "liblift_codegen.a"
)
