file(REMOVE_RECURSE
  "CMakeFiles/lift_codegen.dir/AccessAnalysis.cpp.o"
  "CMakeFiles/lift_codegen.dir/AccessAnalysis.cpp.o.d"
  "CMakeFiles/lift_codegen.dir/CodeGen.cpp.o"
  "CMakeFiles/lift_codegen.dir/CodeGen.cpp.o.d"
  "CMakeFiles/lift_codegen.dir/Runner.cpp.o"
  "CMakeFiles/lift_codegen.dir/Runner.cpp.o.d"
  "CMakeFiles/lift_codegen.dir/View.cpp.o"
  "CMakeFiles/lift_codegen.dir/View.cpp.o.d"
  "liblift_codegen.a"
  "liblift_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
