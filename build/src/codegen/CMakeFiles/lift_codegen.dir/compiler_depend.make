# Empty compiler generated dependencies file for lift_codegen.
# This may be replaced when dependencies are built.
