file(REMOVE_RECURSE
  "liblift_support.a"
)
