file(REMOVE_RECURSE
  "CMakeFiles/lift_support.dir/Support.cpp.o"
  "CMakeFiles/lift_support.dir/Support.cpp.o.d"
  "liblift_support.a"
  "liblift_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
