# Empty compiler generated dependencies file for lift_support.
# This may be replaced when dependencies are built.
