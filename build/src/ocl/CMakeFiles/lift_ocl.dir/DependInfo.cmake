
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocl/Device.cpp" "src/ocl/CMakeFiles/lift_ocl.dir/Device.cpp.o" "gcc" "src/ocl/CMakeFiles/lift_ocl.dir/Device.cpp.o.d"
  "/root/repo/src/ocl/Emitter.cpp" "src/ocl/CMakeFiles/lift_ocl.dir/Emitter.cpp.o" "gcc" "src/ocl/CMakeFiles/lift_ocl.dir/Emitter.cpp.o.d"
  "/root/repo/src/ocl/KernelAst.cpp" "src/ocl/CMakeFiles/lift_ocl.dir/KernelAst.cpp.o" "gcc" "src/ocl/CMakeFiles/lift_ocl.dir/KernelAst.cpp.o.d"
  "/root/repo/src/ocl/Sim.cpp" "src/ocl/CMakeFiles/lift_ocl.dir/Sim.cpp.o" "gcc" "src/ocl/CMakeFiles/lift_ocl.dir/Sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/lift_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/lift_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
