file(REMOVE_RECURSE
  "liblift_ocl.a"
)
