# Empty dependencies file for lift_ocl.
# This may be replaced when dependencies are built.
