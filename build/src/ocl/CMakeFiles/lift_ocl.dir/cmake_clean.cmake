file(REMOVE_RECURSE
  "CMakeFiles/lift_ocl.dir/Device.cpp.o"
  "CMakeFiles/lift_ocl.dir/Device.cpp.o.d"
  "CMakeFiles/lift_ocl.dir/Emitter.cpp.o"
  "CMakeFiles/lift_ocl.dir/Emitter.cpp.o.d"
  "CMakeFiles/lift_ocl.dir/KernelAst.cpp.o"
  "CMakeFiles/lift_ocl.dir/KernelAst.cpp.o.d"
  "CMakeFiles/lift_ocl.dir/Sim.cpp.o"
  "CMakeFiles/lift_ocl.dir/Sim.cpp.o.d"
  "liblift_ocl.a"
  "liblift_ocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
