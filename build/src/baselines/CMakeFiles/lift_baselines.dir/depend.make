# Empty dependencies file for lift_baselines.
# This may be replaced when dependencies are built.
