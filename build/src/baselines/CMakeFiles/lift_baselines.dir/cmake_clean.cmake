file(REMOVE_RECURSE
  "CMakeFiles/lift_baselines.dir/References.cpp.o"
  "CMakeFiles/lift_baselines.dir/References.cpp.o.d"
  "liblift_baselines.a"
  "liblift_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
