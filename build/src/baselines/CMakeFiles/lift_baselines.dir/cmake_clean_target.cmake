file(REMOVE_RECURSE
  "liblift_baselines.a"
)
