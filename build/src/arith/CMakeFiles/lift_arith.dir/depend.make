# Empty dependencies file for lift_arith.
# This may be replaced when dependencies are built.
