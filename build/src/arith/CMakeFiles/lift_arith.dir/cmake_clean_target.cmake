file(REMOVE_RECURSE
  "liblift_arith.a"
)
