file(REMOVE_RECURSE
  "CMakeFiles/lift_arith.dir/ArithExpr.cpp.o"
  "CMakeFiles/lift_arith.dir/ArithExpr.cpp.o.d"
  "liblift_arith.a"
  "liblift_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
