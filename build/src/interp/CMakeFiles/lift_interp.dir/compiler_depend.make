# Empty compiler generated dependencies file for lift_interp.
# This may be replaced when dependencies are built.
