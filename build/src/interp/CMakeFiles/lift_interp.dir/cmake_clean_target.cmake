file(REMOVE_RECURSE
  "liblift_interp.a"
)
