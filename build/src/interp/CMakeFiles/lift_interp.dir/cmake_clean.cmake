file(REMOVE_RECURSE
  "CMakeFiles/lift_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/lift_interp.dir/Interpreter.cpp.o.d"
  "CMakeFiles/lift_interp.dir/Value.cpp.o"
  "CMakeFiles/lift_interp.dir/Value.cpp.o.d"
  "liblift_interp.a"
  "liblift_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
