# Empty compiler generated dependencies file for lift_ir.
# This may be replaced when dependencies are built.
