file(REMOVE_RECURSE
  "CMakeFiles/lift_ir.dir/Expr.cpp.o"
  "CMakeFiles/lift_ir.dir/Expr.cpp.o.d"
  "CMakeFiles/lift_ir.dir/TypeInference.cpp.o"
  "CMakeFiles/lift_ir.dir/TypeInference.cpp.o.d"
  "CMakeFiles/lift_ir.dir/Types.cpp.o"
  "CMakeFiles/lift_ir.dir/Types.cpp.o.d"
  "CMakeFiles/lift_ir.dir/UserFun.cpp.o"
  "CMakeFiles/lift_ir.dir/UserFun.cpp.o.d"
  "liblift_ir.a"
  "liblift_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
