file(REMOVE_RECURSE
  "liblift_ir.a"
)
