# Empty dependencies file for lift_rewrite.
# This may be replaced when dependencies are built.
