file(REMOVE_RECURSE
  "CMakeFiles/lift_rewrite.dir/Exploration.cpp.o"
  "CMakeFiles/lift_rewrite.dir/Exploration.cpp.o.d"
  "CMakeFiles/lift_rewrite.dir/Lowering.cpp.o"
  "CMakeFiles/lift_rewrite.dir/Lowering.cpp.o.d"
  "CMakeFiles/lift_rewrite.dir/Rules.cpp.o"
  "CMakeFiles/lift_rewrite.dir/Rules.cpp.o.d"
  "liblift_rewrite.a"
  "liblift_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
