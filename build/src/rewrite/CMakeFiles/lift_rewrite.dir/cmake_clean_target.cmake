file(REMOVE_RECURSE
  "liblift_rewrite.a"
)
