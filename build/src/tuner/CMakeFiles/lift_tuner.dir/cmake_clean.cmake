file(REMOVE_RECURSE
  "CMakeFiles/lift_tuner.dir/Tuner.cpp.o"
  "CMakeFiles/lift_tuner.dir/Tuner.cpp.o.d"
  "liblift_tuner.a"
  "liblift_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
