file(REMOVE_RECURSE
  "liblift_tuner.a"
)
