# Empty dependencies file for lift_tuner.
# This may be replaced when dependencies are built.
