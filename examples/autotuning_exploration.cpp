//===- autotuning_exploration.cpp - Exploring the rewrite space -----------===//
//
// Part of the liftcpp project.
//
// Shows the exploration workflow the paper automates: one high-level
// stencil program, many low-level variants produced by rewriting
// (tiling on/off, tile sizes, local memory, coarsening, unrolling),
// each evaluated on each modeled device. Prints the whole variant table
// so the per-device winners — the paper's performance-portability
// argument — are visible.
//
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"

#include <algorithm>
#include <cstdio>

using namespace lift;
using namespace lift::stencil;
using namespace lift::tuner;

int main() {
  const Benchmark &B = findBenchmark("Jacobi2D9pt");
  std::printf("Exploring implementation variants of %s (%s, %d points)\n\n",
              B.Name.c_str(), B.Suite.c_str(), B.Points);

  TuningSpace Space = liftSpace();
  // Keep the table readable.
  Space.TileOutputs = {8, 16, 32, 64};
  Space.TileCoarsenFactors = {1, 4};
  Space.CoarsenFactors = {1, 2, 4};
  Space.WorkGroupSizes = {64, 256};
  Space.AllowUnroll = false;

  for (const ocl::DeviceSpec &Dev : ocl::paperDevices()) {
    TuningProblem P = makeProblem(B, /*LargeTarget=*/false);
    TuneResult R = tuneStencil(P, Dev, Space);

    std::sort(R.All.begin(), R.All.end(),
              [](const Evaluated &A, const Evaluated &B2) {
                return A.GElemsPerSec > B2.GElemsPerSec;
              });

    std::printf("=== %s ===\n", Dev.Name.c_str());
    std::printf("%-28s %10s %8s %8s %8s\n", "variant", "GElem/s", "t_mem",
                "t_comp", "t_local");
    std::size_t Show = std::min<std::size_t>(R.All.size(), 8);
    for (std::size_t I = 0; I != Show; ++I) {
      const Evaluated &E = R.All[I];
      std::printf("%-28s %10.3f %7.2fm %7.2fm %7.2fm%s\n",
                  E.C.describe().c_str(), E.GElemsPerSec, E.T.MemTime * 1e3,
                  E.T.ComputeTime * 1e3, E.T.LocalTime * 1e3,
                  I == 0 ? "   <-- best" : "");
    }
    std::printf("(%zu variants evaluated)\n\n", R.All.size());
  }

  std::printf("Note how the winning variant differs per device — the "
              "performance-portability effect\nthe paper attributes to "
              "searching rewrite-generated spaces instead of hard-coding "
              "one strategy.\n");
  return 0;
}
