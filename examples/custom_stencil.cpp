//===- custom_stencil.cpp - Defining your own stencil -----------------------===//
//
// Part of the liftcpp project.
//
// Shows the library as a user would adopt it: define a new scalar
// user function, compose a 2D stencil from the pad/slide/map building
// blocks with a *mirror* boundary, lower it two ways, inspect the
// generated OpenCL, and validate against a plain loop nest.
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"
#include "ocl/Emitter.h"
#include "rewrite/Lowering.h"
#include "stencil/StencilOps.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::stencil;
using namespace lift::rewrite;
using namespace lift::codegen;

int main() {
  // A sharpening filter: out = 5c - (n + s + e + w), clamped at 0.
  UserFunPtr Sharpen = makeUserFun(
      "sharpen", {"n", "w", "c", "e", "s"},
      std::vector<ScalarKind>(5, ScalarKind::Float), ScalarKind::Float,
      "return fmax(0.0f, 5.0f * c - (n + w + e + s));",
      [](const std::vector<Scalar> &A) {
        return Scalar(std::fmax(
            0.0f, 5.0f * A[2].F - (A[0].F + A[1].F + A[3].F + A[4].F)));
      },
      /*FlopCost=*/6);

  // Compose the stencil: mirror boundaries, 3x3 window, cross points.
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr M = var("m", Range(1, 1 << 30));
  ParamPtr A = param("img", arrayT(arrayT(floatT(), M), N));
  LambdaPtr F = lam("nbh", [&](ExprPtr Nbh) {
    return ir::apply(Sharpen, {atNd({0, 1}, Nbh), atNd({1, 0}, Nbh),
                               atNd({1, 1}, Nbh), atNd({1, 2}, Nbh),
                               atNd({2, 1}, Nbh)});
  });
  Program P = makeProgram(
      {A}, stencilNd(2, F, cst(3), cst(1), cst(1), cst(1),
                     Boundary::mirror(), A));

  // Lower it twice: plain and tiled+local.
  LoweringOptions Plain;
  LoweringOptions TiledLocal;
  TiledLocal.Tile = true;
  TiledLocal.TileOutputs = 8;
  TiledLocal.UseLocalMem = true;

  std::string WhyNot;
  Program LowPlain = lowerStencil(P, Plain, &WhyNot);
  Program LowTiled = LowPlain ? lowerStencil(P, TiledLocal, &WhyNot)
                              : nullptr;
  if (!LowPlain || !LowTiled) {
    std::fprintf(stderr, "lowering failed: %s\n", WhyNot.c_str());
    return 1;
  }
  Compiled CPlain = compileProgram(LowPlain, "sharpen_plain");
  Compiled CTiled = compileProgram(LowTiled, "sharpen_tiled");

  std::printf("Generated OpenCL (tiled + local-memory variant):\n%s\n",
              ocl::emitOpenCL(CTiled.K).c_str());

  // Validate both against a straight loop nest on a 16x24 image.
  std::int64_t Rows = 16, Cols = 24;
  std::vector<float> Img(std::size_t(Rows * Cols));
  for (std::size_t I = 0; I != Img.size(); ++I)
    Img[I] = float((I * 37 + 11) % 101) / 100.0f;

  auto LoadMirror = [&](std::int64_t I, std::int64_t J) {
    I = resolveBoundaryIndex(Boundary::Kind::Mirror, I, Rows);
    J = resolveBoundaryIndex(Boundary::Kind::Mirror, J, Cols);
    return Img[std::size_t(I * Cols + J)];
  };
  std::vector<float> Want;
  for (std::int64_t I = 0; I != Rows; ++I)
    for (std::int64_t J = 0; J != Cols; ++J)
      Want.push_back(std::fmax(
          0.0f, 5.0f * LoadMirror(I, J) -
                    (LoadMirror(I - 1, J) + LoadMirror(I, J - 1) +
                     LoadMirror(I, J + 1) + LoadMirror(I + 1, J))));

  ocl::SizeEnv Sizes{{N->getVarId(), Rows}, {M->getVarId(), Cols}};
  RunResult RPlain = runCompiled(CPlain, {Img}, Sizes);
  RunResult RTiled = runCompiled(CTiled, {Img}, Sizes);

  bool OkPlain = RPlain.Output == Want;
  bool OkTiled = RTiled.Output == Want;
  std::printf("plain variant matches loop nest: %s\n",
              OkPlain ? "yes" : "NO");
  std::printf("tiled variant matches loop nest: %s\n",
              OkTiled ? "yes" : "NO");
  std::printf("tiled variant local-memory traffic: %llu loads, %llu "
              "stores\n",
              (unsigned long long)RTiled.Counters.LocalLoads,
              (unsigned long long)RTiled.Counters.LocalStores);
  return OkPlain && OkTiled ? 0 : 1;
}
