//===- acoustic_simulation.cpp - Room acoustics (paper §3.5) --------------===//
//
// Part of the liftcpp project.
//
// The paper's flagship complex stencil (Listing 3): a 3D room-acoustics
// wave propagation with two time-step grids and an on-the-fly neighbor
// mask. This example runs several leapfrog time steps by ping-ponging
// the compiled kernel's grids, injects an impulse source, and prints
// the wavefront amplitude observed at a receiver position over time.
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"

#include <cstdio>
#include <cmath>

using namespace lift;
using namespace lift::ir;
using namespace lift::stencil;
using namespace lift::rewrite;
using namespace lift::codegen;

int main() {
  const Benchmark &B = findBenchmark("Acoustic");
  BenchmarkInstance I = B.Build();

  LoweringOptions O;
  std::string WhyNot;
  Program Low = lowerStencil(I.P, O, &WhyNot);
  if (!Low) {
    std::fprintf(stderr, "lowering failed: %s\n", WhyNot.c_str());
    return 1;
  }
  Compiled C = compileProgram(Low, "acoustic");

  // A small room: 16 x 24 x 24 grid points.
  Extents E = {16, 24, 24};
  auto Sizes = makeSizeEnv(I, E);
  std::size_t Total = std::size_t(totalElems(E));

  std::vector<float> Prev(Total, 0.0f), Cur(Total, 0.0f);
  auto Idx = [&](std::int64_t I0, std::int64_t I1, std::int64_t I2) {
    return std::size_t((I0 * E[1] + I1) * E[2] + I2);
  };
  // Impulse source near one corner; receiver toward the middle
  // (Manhattan distance 16: the 7-point stencil propagates one cell
  // per step along the axes).
  Cur[Idx(4, 6, 6)] = 1.0f;
  std::size_t Receiver = Idx(8, 12, 12);

  std::printf("Room acoustics simulation (paper Listing 3) on a "
              "%lldx%lldx%lld grid\n",
              (long long)E[0], (long long)E[1], (long long)E[2]);
  std::printf("impulse at (4,6,6), receiver at (8,12,12)\n\n");
  std::printf("%6s %14s %14s\n", "step", "receiver", "energy");

  for (int Step = 0; Step != 24; ++Step) {
    RunResult R = runCompiled(C, {Prev, Cur}, Sizes);
    Prev = Cur;
    Cur = R.Output;

    double Energy = 0;
    for (float V : Cur)
      Energy += double(V) * double(V);
    std::printf("%6d %14.4e %14.4e\n", Step + 1, Cur[Receiver],
                std::sqrt(Energy));
  }

  std::printf("\nThe wavefront reaches the receiver after ~16 steps "
              "(its Manhattan distance from the source) and the\n"
              "total energy stays bounded thanks to the boundary loss "
              "coefficients applied where the neighbor mask < 6.\n");
  return 0;
}
