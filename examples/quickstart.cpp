//===- quickstart.cpp - The paper's running example, end to end -----------===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
// Walks the paper's running example through the whole pipeline:
//
//  1. build Listing 2 — map(sumNbh, slide(3,1, pad(1,1,clamp,A))),
//  2. type-check it (sizes propagate symbolically),
//  3. run the reference interpreter (matches the C loop of Listing 1),
//  4. apply the overlapped-tiling rewrite rule (§4.1) => Listing 4,
//  5. lower, generate OpenCL C, and execute on the NDRange simulator,
//  6. compare all results.
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"
#include "interp/Interpreter.h"
#include "ir/TypeInference.h"
#include "ocl/Emitter.h"
#include "rewrite/Lowering.h"
#include "stencil/StencilOps.h"

#include <cstdio>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;
using namespace lift::stencil;
using namespace lift::rewrite;
using namespace lift::codegen;

int main() {
  // --- 1. Listing 2 ---------------------------------------------------
  AExpr N = var("n", Range(1, 1 << 30));
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduce(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  Program P = makeProgram(
      {A}, map(SumNbh, slide(cst(3), cst(1),
                             pad(cst(1), cst(1), Boundary::clamp(), A))));
  std::printf("Listing 2 (high-level Lift):\n  %s\n\n",
              ir::toString(P).c_str());

  // --- 2. Types -------------------------------------------------------
  TypePtr T = inferTypes(P);
  std::printf("Inferred result type: %s (same length as the input)\n\n",
              T->toString().c_str());

  // --- 3. Interpret (= Listing 1 semantics) ---------------------------
  std::vector<float> In = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8};
  SizeEnv Sizes{{N->getVarId(), std::int64_t(In.size())}};
  Value Res = evalProgram(P, {makeFloatArray(In)}, Sizes);
  std::vector<float> Interp;
  flattenValue(Res, Interp);
  std::printf("Interpreter output:  ");
  for (float V : Interp)
    std::printf("%.0f ", V);
  std::printf("\n\n");

  // --- 4. The overlapped-tiling rule (Section 4.1) --------------------
  Program Tiled = rewriteProgram(tiling1DRule(3), P);
  std::printf("After the tiling rule (= Listing 4, tiles of 5 sliding by "
              "3):\n  %s\n\n",
              ir::toString(Tiled).c_str());

  // --- 5. Lower + generate OpenCL + simulate --------------------------
  LoweringOptions O; // one work-item per output element
  std::string WhyNot;
  Program Low = lowerStencil(P, O, &WhyNot);
  if (!Low) {
    std::fprintf(stderr, "lowering failed: %s\n", WhyNot.c_str());
    return 1;
  }
  Compiled C = compileProgram(Low, "jacobi3pt");
  std::printf("Generated OpenCL C:\n%s\n", ocl::emitOpenCL(C.K).c_str());

  RunResult R = runCompiled(C, {In}, Sizes);
  std::printf("Simulator output:    ");
  for (float V : R.Output)
    std::printf("%.0f ", V);
  std::printf("\n");
  std::printf("Counters: %llu global loads, %llu stores, %llu flops\n",
              (unsigned long long)R.Counters.GlobalLoads,
              (unsigned long long)R.Counters.GlobalStores,
              (unsigned long long)R.Counters.Flops);

  // --- 6. Agreement ----------------------------------------------------
  bool Same = R.Output == Interp;
  std::printf("\nInterpreter and compiled kernel agree: %s\n",
              Same ? "yes" : "NO (bug!)");
  return Same ? 0 : 1;
}
