//===- bench_ablation_unroll.cpp - Reduction unrolling ablation ------------===//
//
// Part of the liftcpp project.
//
// Ablation for the paper's §4.3 design choice: reduceSeqUnroll on/off
// across stencils of growing neighborhood size (the unrolled loop body
// grows with the point count).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "ocl/Device.h"
#include "tuner/Tuner.h"

#include <cstdio>

using namespace lift;
using namespace lift::stencil;
using namespace lift::tuner;
using namespace lift::bench;

int main(int argc, char **argv) {
  obs::ObsSession Obs = obsSessionFromArgs(argc, argv);
  unsigned Jobs = parseJobs(argc, argv);
  std::printf("Ablation: reduction unrolling (reduceSeqUnroll, paper "
              "4.3), untiled variants, wg=128 [jobs=%u]\n", Jobs);
  std::printf("Only reduce-style programs (Listing 2 formulation, e.g. "
              "Jacobi2D9pt) contain a\nreduction to unroll; "
              "point-extraction formulations are unaffected.\n");
  printRule(110);
  std::printf("%-14s %-12s %12s %12s %10s %10s %8s\n", "Benchmark",
              "Device", "GE/s +u", "GE/s -u", "tComp+u", "tComp-u",
              "compGain");
  printRule(110);

  for (const char *Name : {"Jacobi2D9pt"}) {
    const Benchmark &B = findBenchmark(Name);
    TuningProblem P = makeProblem(B, false);

    Candidate On, Off;
    On.Options.UnrollReduce = true;
    On.Launch.WorkGroupSize = Off.Launch.WorkGroupSize = 128;

    for (const ocl::DeviceSpec &Dev : ocl::paperDevices()) {
      Evaluated EOn = evaluateCandidate(P, Dev, On, Jobs);
      Evaluated EOff = evaluateCandidate(P, Dev, Off, Jobs);
      std::printf("%-14s %-12s %12.3f %12.3f %9.2fms %9.2fms %7.2fx\n",
                  B.Name.c_str(), Dev.Name.c_str(), EOn.GElemsPerSec,
                  EOff.GElemsPerSec, EOn.T.ComputeTime * 1e3,
                  EOff.T.ComputeTime * 1e3,
                  EOff.T.ComputeTime / EOn.T.ComputeTime);
    }
  }
  printRule(110);
  std::printf("Unrolling removes per-iteration loop overhead; these "
              "stencils are memory-bound, so the\ncompute-side gain "
              "(compGain) rarely moves end-to-end throughput -- one "
              "reason the paper\ntreats unrolling as a searchable "
              "choice rather than a default.\n");
  return Obs.finish();
}
