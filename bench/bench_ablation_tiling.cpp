//===- bench_ablation_tiling.cpp - Overlapped tiling ablation --------------===//
//
// Part of the liftcpp project.
//
// Ablation for the paper's §4.1 design choice: sweep the overlapped
// tiling rule's tile size (with and without local-memory staging)
// against the untiled baseline, per device. Shows where the rewrite
// rule pays off and where it costs — the reason tiling must be a
// searchable *choice*, not a hard-coded strategy.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "ocl/Device.h"
#include "tuner/Tuner.h"

#include <cstdio>

using namespace lift;
using namespace lift::stencil;
using namespace lift::tuner;
using namespace lift::bench;

int main(int argc, char **argv) {
  obs::ObsSession Obs = obsSessionFromArgs(argc, argv);
  unsigned Jobs = parseJobs(argc, argv);
  std::printf("Ablation: overlapped tiling (rule of paper 4.1), "
              "GElements/s at the small target size [jobs=%u]\n", Jobs);

  for (const char *Name : {"Jacobi2D9pt", "Gaussian", "Jacobi3D7pt"}) {
    const Benchmark &B = findBenchmark(Name);
    TuningProblem P = makeProblem(B, /*LargeTarget=*/false);

    printRule();
    std::printf("%s (%s, %d points)\n", B.Name.c_str(),
                extentsToString(P.Target).c_str(), B.Points);
    printRule();
    std::printf("%-22s", "Variant");
    for (const ocl::DeviceSpec &Dev : ocl::paperDevices())
      std::printf(" %12s", Dev.Name.c_str());
    std::printf("\n");

    std::vector<Candidate> Variants;
    {
      Candidate C;
      C.Launch.WorkGroupSize = 128;
      Variants.push_back(C); // untiled baseline
    }
    for (std::int64_t V : {4, 8, 16, 32}) {
      for (bool Local : {false, true}) {
        Candidate C;
        C.Options.Tile = true;
        C.Options.TileOutputs = V;
        C.Options.UseLocalMem = Local;
        Variants.push_back(C);
      }
    }

    for (const Candidate &C : Variants) {
      std::printf("%-22s", C.Options.describe().c_str());
      for (const ocl::DeviceSpec &Dev : ocl::paperDevices()) {
        Evaluated E = evaluateCandidate(P, Dev, C, Jobs);
        if (E.Valid)
          std::printf(" %12.3f", E.GElemsPerSec);
        else
          std::printf(" %12s", "-");
      }
      std::printf("\n");
    }
  }
  return Obs.finish();
}
