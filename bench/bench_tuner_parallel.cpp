//===- bench_tuner_parallel.cpp - Parallel tuning sweep benchmark ----------===//
//
// Part of the liftcpp project.
//
// Times the exhaustive Figure-7-style tuning sweep end-to-end at
// jobs=1 (the legacy sequential tuner: tree-walking simulator, no
// evaluation memo) against the parallel evaluation engine (compiled
// simulator + structural-equality evaluation memo + candidate-level
// threading), and verifies the winner is identical either way.
//
// Passing --json [path] emits a compact JSON summary (per-benchmark
// jobs=1 and jobs=N wall milliseconds plus the speedup) instead of the
// console table; the checked-in BENCH_tuner_parallel.json snapshot at
// the repo root is produced this way. --jobs N sets the parallel job
// count (default 4).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "ocl/Device.h"
#include "tuner/Tuner.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::stencil;
using namespace lift::tuner;
using namespace lift::bench;

namespace {

double wallMs(const std::function<void()> &F) {
  auto T0 = std::chrono::steady_clock::now();
  F();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

struct Row {
  std::string Name;
  std::size_t Candidates = 0;
  double SeqMs = 0;
  double ParMs = 0;
  std::uint64_t MemoHits = 0;
  bool SameWinner = false;
  double speedup() const { return SeqMs / ParMs; }
};

} // namespace

int main(int argc, char **argv) {
  obs::ObsSession Obs = obsSessionFromArgs(argc, argv);
  unsigned Jobs = parseJobs(argc, argv, /*Default=*/4);
  if (Jobs == 1)
    Jobs = 4; // the point of this harness is a jobs=1 vs jobs=N contrast

  bool Json = false;
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    if (std::string(argv[I]) == "--json") {
      Json = true;
      if (I + 1 < argc && argv[I + 1][0] != '-')
        JsonPath = argv[I + 1];
    }
  }

  ocl::DeviceSpec Dev = ocl::deviceNvidiaK20c();
  std::vector<Row> Rows;
  bool AllSame = true;

  for (const char *Name : {"Jacobi2D5pt", "Jacobi3D7pt", "Hotspot2D"}) {
    const Benchmark &B = findBenchmark(Name);
    TuningProblem P = makeProblem(B, /*LargeTarget=*/false);

    Row R;
    R.Name = Name;

    TuneOptions Seq; // Jobs = 1: legacy sequential tuner
    TuneOptions Par;
    Par.Jobs = Jobs;

    TuneResult RSeq, RPar;
    R.SeqMs = wallMs([&] { RSeq = tuneStencil(P, Dev, liftSpace(), Seq); });
    R.ParMs = wallMs([&] { RPar = tuneStencil(P, Dev, liftSpace(), Par); });
    R.Candidates = RSeq.All.size();
    R.MemoHits = RPar.MemoHits;
    R.SameWinner = RSeq.Best.C.describe() == RPar.Best.C.describe() &&
                   RSeq.Best.T.Total == RPar.Best.T.Total &&
                   RSeq.All.size() == RPar.All.size();
    AllSame = AllSame && R.SameWinner;
    Rows.push_back(R);
  }

  if (Json) {
    // Both sweeps rank by the device model; a measured-objective sweep
    // (tuner::Objective::Measured) would say "measured" here.
    std::string Out = "{\n\"meta\": " + benchMetaJson() +
                      ",\n\"jobs\": " + std::to_string(Jobs) +
                      ",\n\"objective\": \"modeled\"" + ",\n\"sweeps\": [\n";
    for (std::size_t I = 0; I != Rows.size(); ++I) {
      const Row &R = Rows[I];
      char Buf[256];
      std::snprintf(Buf, sizeof(Buf),
                    "  {\"name\": \"%s\", \"candidates\": %zu, "
                    "\"jobs1_ms\": %.1f, \"jobsN_ms\": %.1f, "
                    "\"speedup\": %.2f, \"memo_hits\": %llu, "
                    "\"same_winner\": %s}",
                    R.Name.c_str(), R.Candidates, R.SeqMs, R.ParMs,
                    R.speedup(), (unsigned long long)R.MemoHits,
                    R.SameWinner ? "true" : "false");
      Out += Buf;
      Out += I + 1 == Rows.size() ? "\n" : ",\n";
    }
    Out += "]\n}\n";
    if (JsonPath.empty()) {
      std::cout << Out;
    } else {
      std::ofstream OS(JsonPath);
      if (!OS) {
        std::cerr << "cannot open " << JsonPath << " for writing\n";
        return 1;
      }
      OS << Out;
    }
  } else {
    std::printf("Exhaustive tuning sweep: legacy sequential (jobs=1) vs "
                "parallel engine (jobs=%u)\n", Jobs);
    printRule(90);
    std::printf("%-14s %10s %12s %12s %9s %10s %12s\n", "Benchmark",
                "cands", "jobs=1 ms", "jobs=N ms", "speedup", "memoHits",
                "same winner");
    printRule(90);
    for (const Row &R : Rows)
      std::printf("%-14s %10zu %12.1f %12.1f %8.2fx %10llu %12s\n",
                  R.Name.c_str(), R.Candidates, R.SeqMs, R.ParMs,
                  R.speedup(), (unsigned long long)R.MemoHits,
                  R.SameWinner ? "yes" : "NO");
    printRule(90);
  }

  int ObsRC = Obs.finish();
  return AllSame ? ObsRC : 1;
}
