//===- bench_figure7.cpp - Reproduces Figure 7 ----------------------------===//
//
// Part of the liftcpp project.
//
// Figure 7: performance of Lift-generated (auto-tuned) kernels vs the
// hand-written reference kernels, in giga-elements updated per second,
// on the three modeled GPUs. The Lift numbers come from tuning the full
// implementation space; the reference numbers evaluate the fixed,
// untuned configuration modeling each original kernel.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "baselines/References.h"
#include "ocl/Device.h"
#include "tuner/Tuner.h"

#include <cstdio>

using namespace lift;
using namespace lift::stencil;
using namespace lift::tuner;
using namespace lift::bench;

int main(int argc, char **argv) {
  obs::ObsSession Obs = obsSessionFromArgs(argc, argv);
  TuneOptions Opts;
  Opts.Jobs = parseJobs(argc, argv);
  std::printf("Figure 7: Lift (tuned) vs hand-written reference, "
              "GElements/s  [jobs=%u%s]\n", Opts.Jobs,
              Opts.Jobs == 0 ? " (all workers)" : "");
  printRule();
  std::printf("%-12s %-10s %12s %12s %8s  %s\n", "Device", "Benchmark",
              "Lift", "Reference", "Ratio", "Best Lift variant");
  printRule();

  for (const ocl::DeviceSpec &Dev : ocl::paperDevices()) {
    for (const Benchmark &B : allBenchmarks()) {
      if (!B.InFigure7)
        continue;
      TuningProblem P = makeProblem(B, /*LargeTarget=*/false);

      TuneResult Lift = tuneStencil(P, Dev, liftSpace(), Opts);
      Evaluated Ref = evaluateCandidate(
          P, Dev, baselines::referenceCandidate(B), Opts.Jobs);
      if (!Ref.Valid) {
        std::printf("%-12s %-10s reference configuration invalid\n",
                    Dev.Name.c_str(), B.Name.c_str());
        continue;
      }
      std::printf("%-12s %-10s %12.3f %12.3f %7.2fx  %s\n",
                  Dev.Name.c_str(), B.Name.c_str(), Lift.Best.GElemsPerSec,
                  Ref.GElemsPerSec,
                  Lift.Best.GElemsPerSec / Ref.GElemsPerSec,
                  Lift.Best.C.describe().c_str());
    }
    printRule();
  }
  std::printf("Paper shape: Lift comparable to references in most cases;\n"
              "SRAD1/2 low absolute throughput on the big GPUs (input too\n"
              "small to saturate them); references never beat tuned Lift.\n");
  return Obs.finish();
}
