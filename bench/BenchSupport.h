//===- BenchSupport.h - Shared harness helpers -----------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small formatting and driver helpers shared by the table/figure
/// harness binaries.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_BENCH_BENCHSUPPORT_H
#define LIFT_BENCH_BENCHSUPPORT_H

#include "obs/Json.h"
#include "obs/Obs.h"
#include "stencil/Benchmarks.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace lift {
namespace bench {

/// "4096x4096"
inline std::string extentsToString(const stencil::Extents &E) {
  std::string S;
  for (std::size_t I = 0; I != E.size(); ++I) {
    if (I != 0)
      S += "x";
    S += std::to_string(E[I]);
  }
  return S;
}

inline void printRule(int Width = 100) {
  for (int I = 0; I != Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

/// Parses `--jobs N` / `--jobs=N` from the command line. 0 (the
/// default) means all hardware workers; 1 selects the legacy fully
/// sequential evaluation path.
inline unsigned parseJobs(int Argc, char **Argv, unsigned Default = 0) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      return unsigned(std::atoi(Argv[I + 1]));
    if (std::strncmp(Argv[I], "--jobs=", 7) == 0)
      return unsigned(std::atoi(Argv[I] + 7));
  }
  return Default;
}

/// Arms the observability session from the shared --trace/--metrics/
/// --obs-report flags (obs/Obs.h). Declare at the top of a harness
/// main; finish() at the end (or the destructor) writes the files.
inline obs::ObsSession obsSessionFromArgs(int Argc, char **Argv) {
  return obs::ObsSession(obs::parseObsOptions(Argc, Argv));
}

/// Build/host provenance for --json snapshot outputs: compiler
/// version and flags, CPU model and hostname, so a snapshot records
/// *who* produced the numbers. Returns a serialized JSON object;
/// harnesses embed it under a "meta" key. tools/bench_diff skips the
/// block when comparing (host identity is not a perf metric).
inline std::string benchMetaJson() {
  using obs::json::Value;
  Value M = Value::makeObject();
#ifdef __VERSION__
  M.set("compiler", Value::string(__VERSION__));
#else
  M.set("compiler", Value::string("unknown"));
#endif
#ifdef LIFT_BENCH_CXX_FLAGS
  M.set("cxx_flags", Value::string(LIFT_BENCH_CXX_FLAGS));
#endif
#ifdef LIFT_BENCH_BUILD_TYPE
  M.set("build_type", Value::string(LIFT_BENCH_BUILD_TYPE));
#endif
  std::string Cpu = "unknown";
  if (std::FILE *F = std::fopen("/proc/cpuinfo", "r")) {
    char Line[512];
    while (std::fgets(Line, sizeof(Line), F)) {
      if (std::strncmp(Line, "model name", 10) == 0) {
        if (const char *Colon = std::strchr(Line, ':')) {
          Cpu = Colon + 1;
          while (!Cpu.empty() && (Cpu.front() == ' ' || Cpu.front() == '\t'))
            Cpu.erase(Cpu.begin());
          while (!Cpu.empty() &&
                 (Cpu.back() == '\n' || Cpu.back() == '\r' ||
                  Cpu.back() == ' '))
            Cpu.pop_back();
        }
        break;
      }
    }
    std::fclose(F);
  }
  M.set("cpu", Value::string(Cpu));
  std::string Host = "unknown";
#if defined(__unix__) || defined(__APPLE__)
  char Buf[256] = {};
  if (gethostname(Buf, sizeof(Buf) - 1) == 0 && Buf[0])
    Host = Buf;
#endif
  M.set("hostname", Value::string(Host));
  return M.serialize();
}

} // namespace bench
} // namespace lift

#endif // LIFT_BENCH_BENCHSUPPORT_H
