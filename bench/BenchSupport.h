//===- BenchSupport.h - Shared harness helpers -----------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small formatting and driver helpers shared by the table/figure
/// harness binaries.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_BENCH_BENCHSUPPORT_H
#define LIFT_BENCH_BENCHSUPPORT_H

#include "obs/Obs.h"
#include "stencil/Benchmarks.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace lift {
namespace bench {

/// "4096x4096"
inline std::string extentsToString(const stencil::Extents &E) {
  std::string S;
  for (std::size_t I = 0; I != E.size(); ++I) {
    if (I != 0)
      S += "x";
    S += std::to_string(E[I]);
  }
  return S;
}

inline void printRule(int Width = 100) {
  for (int I = 0; I != Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

/// Parses `--jobs N` / `--jobs=N` from the command line. 0 (the
/// default) means all hardware workers; 1 selects the legacy fully
/// sequential evaluation path.
inline unsigned parseJobs(int Argc, char **Argv, unsigned Default = 0) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      return unsigned(std::atoi(Argv[I + 1]));
    if (std::strncmp(Argv[I], "--jobs=", 7) == 0)
      return unsigned(std::atoi(Argv[I] + 7));
  }
  return Default;
}

/// Arms the observability session from the shared --trace/--metrics/
/// --obs-report flags (obs/Obs.h). Declare at the top of a harness
/// main; finish() at the end (or the destructor) writes the files.
inline obs::ObsSession obsSessionFromArgs(int Argc, char **Argv) {
  return obs::ObsSession(obs::parseObsOptions(Argc, Argv));
}

} // namespace bench
} // namespace lift

#endif // LIFT_BENCH_BENCHSUPPORT_H
