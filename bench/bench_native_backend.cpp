//===- bench_native_backend.cpp - Native backend vs simulator model --------===//
//
// Part of the liftcpp project.
//
// Runs the paper's 2D/3D stencils through the native backend (C
// emission -> host compiler -> dlopen -> real execution) and reports
// measured wall-clock time next to the device-model prediction the
// tuner normally ranks by. Each variant is validated against the
// benchmark's independent golden implementation (max |err| < 1e-3;
// the harness exits non-zero otherwise), so the table doubles as an
// end-to-end correctness check of the emitted C.
//
// The two time columns deliberately measure different things: the
// model predicts seconds on the paper's GPU (NvidiaK20c by default)
// at the paper's target grid, while the native column is real seconds
// on this host CPU at the reduced measurement grid. The comparison is
// about *ranking agreement and availability of a measured objective*,
// not absolute agreement.
//
// Since the clamped remainder-tile lowering every tiled variant runs
// on every benchmark: tiles that do not divide a grid get shifted
// tail tiles, and a tile larger than a short extent (tiled16-local on
// Hotspot3D's 4-deep axis) is clamped to it per dimension. A variant
// that still cannot run (e.g. a step != 1 remainder) appears as a
// "skipped" row carrying the tuner's prune reason instead of being
// dropped silently.
//
// Modes:
//   --json [path]           the JSON snapshot checked in as
//                           BENCH_native_backend.json
//   --full                  run the native measurements at the paper's
//                           target grids (4096^2, 256^3, ...) instead
//                           of the reduced measurement grids
//   --boundary              compare generic vs interior-specialized
//                           native kernels (analysis/InteriorSpec.h)
//                           instead of native vs model
//   --boundary-json [path]  the boundary comparison as JSON (the
//                           checked-in BENCH_native_boundary.json is
//                           produced with --full --boundary-json)
//   --jobs N                OpenMP thread count of the native runs
//   --warmup/--repeats      timing protocol (untimed + timed runs)
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "analysis/InteriorSpec.h"
#include "codegen/Runner.h"
#include "ir/StructuralHash.h"
#include "native/NativeRunner.h"
#include "ocl/Device.h"
#include "rewrite/Lowering.h"
#include "tuner/Tuner.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::stencil;
using namespace lift::tuner;
using namespace lift::bench;

namespace {

struct Row {
  std::string Name;
  std::string Variant;
  std::string MeasureGrid;
  std::string TargetGrid;
  std::string Skipped; ///< non-empty: prune reason, no measurements
  double NativeMs = 0;
  double NativeGElems = 0; ///< at measurement size, on this host
  double ModeledMs = 0;
  double ModeledGElems = 0; ///< at target size, on the device model
  double MaxErr = 0;
};

/// One generic-vs-specialized comparison (--boundary mode).
struct BoundaryRow {
  std::string Name;
  std::string Grid;
  unsigned LoopsSplit = 0;
  double GenericMs = 0;
  double SpecializedMs = 0;
  double Speedup = 0; ///< GenericMs / SpecializedMs
  double MaxErr = 0;  ///< worst of the two runs vs golden
};

unsigned parseUnsigned(int Argc, char **Argv, const char *Flag,
                       unsigned Default) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::string(Argv[I]) == Flag)
      return unsigned(std::atoi(Argv[I + 1]));
  return Default;
}

double validate(const std::vector<float> &Got,
                const std::vector<float> &Want) {
  double MaxErr = 0;
  for (std::size_t X = 0; X != Want.size(); ++X)
    MaxErr = std::max(MaxErr, double(std::abs(Got[X] - Want[X])));
  return MaxErr;
}

const char *const BenchNames[] = {"Jacobi2D5pt", "Gaussian", "Hotspot2D",
                                  "Jacobi3D7pt", "Heat", "Hotspot3D"};

} // namespace

int main(int argc, char **argv) {
  obs::ObsSession Obs = obsSessionFromArgs(argc, argv);
  unsigned Threads = parseJobs(argc, argv, /*Default=*/1);
  unsigned Warmup = parseUnsigned(argc, argv, "--warmup", 1);
  unsigned Repeats = parseUnsigned(argc, argv, "--repeats", 3);

  bool Json = false, Full = false, Boundary = false, BoundaryJson = false;
  std::string JsonPath, BoundaryJsonPath;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--json") {
      Json = true;
      if (I + 1 < argc && argv[I + 1][0] != '-')
        JsonPath = argv[I + 1];
    } else if (A == "--full") {
      Full = true;
    } else if (A == "--boundary") {
      Boundary = true;
    } else if (A == "--boundary-json") {
      Boundary = BoundaryJson = true;
      if (I + 1 < argc && argv[I + 1][0] != '-')
        BoundaryJsonPath = argv[I + 1];
    }
  }

  try {
    native::probeToolchain();
  } catch (const native::NativeError &Ex) {
    std::fprintf(stderr, "bench_native_backend: no usable toolchain: %s\n",
                 Ex.what());
    return 1;
  }

  ocl::DeviceSpec Dev = ocl::deviceNvidiaK20c();

  //===--------------------------------------------------------------------===//
  // --boundary: generic vs interior-specialized native wall clock.
  //===--------------------------------------------------------------------===//
  if (Boundary) {
    std::vector<BoundaryRow> BRows;
    bool AllValid = true;
    for (const char *Name : BenchNames) {
      const Benchmark &B = findBenchmark(Name);
      TuningProblem P = makeProblem(B, /*LargeTarget=*/false);
      const Extents &Grid = Full ? P.Target : P.Measure;
      ocl::SizeEnv Env = makeSizeEnv(P.Instance, Grid);
      std::vector<std::vector<float>> Inputs = makeBenchmarkInputs(B, Grid);
      std::vector<float> Want = B.Golden(Inputs, Grid);

      // Untiled lowering only: the specializer leaves barrier-staged
      // tiled kernels untouched by design.
      ir::Program Low = rewrite::lowerStencil(P.Instance.P, {});
      codegen::Compiled Generic = codegen::compileProgram(Low, B.Name);
      analysis::SpecStats SS;
      codegen::Compiled Spec = Generic;
      Spec.K = analysis::specializeInterior(Generic.K, &SS);

      BoundaryRow R;
      R.Name = Name;
      R.Grid = extentsToString(Grid);
      R.LoopsSplit = SS.LoopsSplit;
      std::size_t Hash = ir::structuralHash(Low);
      try {
        native::NativeKernelPtr GK =
            native::KernelCache::global().getOrCompile(Hash, Generic.K);
        native::NativeRunResult GR = native::runNative(
            Generic, *GK, Inputs, Env, Threads, Warmup, Repeats);
        native::NativeKernelPtr SK =
            native::KernelCache::global().getOrCompile(
                Hash ^ 0xA5A5A5A5A5A5A5A5ULL, Spec.K);
        native::NativeRunResult SR = native::runNative(
            Spec, *SK, Inputs, Env, Threads, Warmup, Repeats);
        R.GenericMs = GR.Seconds * 1e3;
        R.SpecializedMs = SR.Seconds * 1e3;
        R.Speedup = GR.Seconds / SR.Seconds;
        R.MaxErr = std::max(validate(GR.Output, Want),
                            validate(SR.Output, Want));
      } catch (const native::NativeError &Ex) {
        std::fprintf(stderr, "%s: native backend failed: %s\n", Name,
                     Ex.what());
        AllValid = false;
        continue;
      }
      if (R.MaxErr >= 1e-3) {
        std::fprintf(stderr, "%s: VALIDATION FAILED (max err %.3g)\n", Name,
                     R.MaxErr);
        AllValid = false;
      }
      BRows.push_back(R);
    }

    if (BoundaryJson) {
      std::string Out =
          "{\n\"meta\": " + benchMetaJson() +
          ",\n\"threads\": " + std::to_string(Threads) +
          ",\n\"warmup\": " + std::to_string(Warmup) +
          ",\n\"repeats\": " + std::to_string(Repeats) +
          ",\n\"grids\": \"" + (Full ? "target" : "measure") + "\"" +
          ",\n\"benchmarks\": [\n";
      for (std::size_t I = 0; I != BRows.size(); ++I) {
        const BoundaryRow &R = BRows[I];
        char Buf[512];
        std::snprintf(
            Buf, sizeof(Buf),
            "  {\"name\": \"%s\", \"grid\": \"%s\", "
            "\"loops_split\": %u, \"generic_ms\": %.4f, "
            "\"specialized_ms\": %.4f, \"speedup\": %.4f, "
            "\"max_err\": %.3g}",
            R.Name.c_str(), R.Grid.c_str(), R.LoopsSplit, R.GenericMs,
            R.SpecializedMs, R.Speedup, R.MaxErr);
        Out += Buf;
        Out += I + 1 == BRows.size() ? "\n" : ",\n";
      }
      Out += "]\n}\n";
      if (BoundaryJsonPath.empty()) {
        std::cout << Out;
      } else {
        std::ofstream OS(BoundaryJsonPath);
        if (!OS) {
          std::cerr << "cannot open " << BoundaryJsonPath
                    << " for writing\n";
          return 1;
        }
        OS << Out;
      }
    } else {
      std::printf("Generic vs interior-specialized native kernels "
                  "(%s grids); %u thread(s), best of %u after %u warmup\n",
                  Full ? "target" : "measure", Threads, Repeats, Warmup);
      printRule(86);
      std::printf("%-12s %-14s %6s %12s %12s %9s %9s\n", "Benchmark",
                  "Grid", "split", "generic ms", "special ms", "speedup",
                  "max err");
      printRule(86);
      for (const BoundaryRow &R : BRows)
        std::printf("%-12s %-14s %6u %12.4f %12.4f %8.2fx %9.2g\n",
                    R.Name.c_str(), R.Grid.c_str(), R.LoopsSplit,
                    R.GenericMs, R.SpecializedMs, R.Speedup, R.MaxErr);
      printRule(86);
    }
    return AllValid ? 0 : 1;
  }

  //===--------------------------------------------------------------------===//
  // Default: native backend vs device model, per variant.
  //===--------------------------------------------------------------------===//

  // The two code shapes the backend emits: flat OpenMP-parallel loops
  // (untiled mapGlb) and work-group tiles staged through a private
  // local-memory array (tiled + local). Remainder and short-extent
  // grids are legal since the clamped tiling scheme; a variant the
  // tuner still prunes (genuinely unsupported shape) appears as a
  // "skipped" row with the prune reason.
  std::vector<Candidate> Variants(2);
  Variants[0].Options.Tile = false;
  Variants[1].Options.Tile = true;
  Variants[1].Options.TileOutputs = 16;
  Variants[1].Options.UseLocalMem = true;

  std::vector<Row> Rows;
  bool AllValid = true;

  for (const char *Name : BenchNames) {
    const Benchmark &B = findBenchmark(Name);
    TuningProblem P = makeProblem(B, /*LargeTarget=*/false);
    const Extents &Grid = Full ? P.Target : P.Measure;
    ocl::SizeEnv NativeEnv = makeSizeEnv(P.Instance, Grid);
    std::vector<std::vector<float>> Inputs =
        Full ? makeBenchmarkInputs(B, Grid) : P.Inputs;
    std::vector<float> Want = B.Golden(Inputs, Grid);

    for (const Candidate &C : Variants) {
      Evaluated E = evaluateCandidate(P, Dev, C, /*Jobs=*/1);
      Row R;
      R.Name = Name;
      R.Variant = C.Options.describe();
      R.MeasureGrid = extentsToString(Grid);
      R.TargetGrid = extentsToString(P.Target);
      if (!E.Valid) {
        // Constraint-pruned (e.g. tile does not divide a grid extent):
        // record why instead of dropping the row.
        R.Skipped = E.WhyNot;
        Rows.push_back(R);
        continue;
      }

      // Lower at the concrete grid so the clamped tiling scheme can
      // clamp the per-dimension tile to short extents (Hotspot3D's
      // 4-deep axis under a 16-output tile).
      rewrite::LoweringOptions LO = C.Options;
      LO.OutputExtents.assign(Grid.begin(), Grid.end());
      ir::Program Low = rewrite::lowerStencil(P.Instance.P, LO);
      codegen::Compiled CC = codegen::compileProgram(Low, B.Name);
      R.ModeledMs = E.T.Total * 1e3;
      R.ModeledGElems = E.GElemsPerSec;
      try {
        native::NativeKernelPtr Kern =
            native::KernelCache::global().getOrCompile(
                ir::structuralHash(Low), CC.K);
        native::NativeRunResult NR = native::runNative(
            CC, *Kern, Inputs, NativeEnv, Threads, Warmup, Repeats);
        R.NativeMs = NR.Seconds * 1e3;
        R.NativeGElems = double(totalElems(Grid)) / NR.Seconds / 1e9;
        R.MaxErr = validate(NR.Output, Want);
      } catch (const native::NativeError &Ex) {
        std::fprintf(stderr, "%s %s: native backend failed: %s\n", Name,
                     R.Variant.c_str(), Ex.what());
        AllValid = false;
        continue;
      }
      if (R.MaxErr >= 1e-3) {
        std::fprintf(stderr, "%s %s: VALIDATION FAILED (max err %.3g)\n",
                     Name, R.Variant.c_str(), R.MaxErr);
        AllValid = false;
      }
      Rows.push_back(R);
    }
  }

  if (Json) {
    std::string Out = "{\n\"meta\": " + benchMetaJson() +
                      ",\n\"device_model\": \"" + Dev.Name + "\"" +
                      ",\n\"threads\": " + std::to_string(Threads) +
                      ",\n\"warmup\": " + std::to_string(Warmup) +
                      ",\n\"repeats\": " + std::to_string(Repeats) +
                      ",\n\"benchmarks\": [\n";
    for (std::size_t I = 0; I != Rows.size(); ++I) {
      const Row &R = Rows[I];
      char Buf[512];
      if (!R.Skipped.empty())
        std::snprintf(Buf, sizeof(Buf),
                      "  {\"name\": \"%s\", \"variant\": \"%s\", "
                      "\"measure_grid\": \"%s\", \"target_grid\": \"%s\", "
                      "\"skipped\": \"%s\"}",
                      R.Name.c_str(), R.Variant.c_str(),
                      R.MeasureGrid.c_str(), R.TargetGrid.c_str(),
                      R.Skipped.c_str());
      else
        std::snprintf(
            Buf, sizeof(Buf),
            "  {\"name\": \"%s\", \"variant\": \"%s\", "
            "\"measure_grid\": \"%s\", \"target_grid\": \"%s\", "
            "\"native_ms\": %.4f, \"native_gelems_per_sec\": %.4f, "
            "\"modeled_ms\": %.4f, \"modeled_gelems_per_sec\": %.4f, "
            "\"max_err\": %.3g}",
            R.Name.c_str(), R.Variant.c_str(), R.MeasureGrid.c_str(),
            R.TargetGrid.c_str(), R.NativeMs, R.NativeGElems, R.ModeledMs,
            R.ModeledGElems, R.MaxErr);
      Out += Buf;
      Out += I + 1 == Rows.size() ? "\n" : ",\n";
    }
    Out += "]\n}\n";
    if (JsonPath.empty()) {
      std::cout << Out;
    } else {
      std::ofstream OS(JsonPath);
      if (!OS) {
        std::cerr << "cannot open " << JsonPath << " for writing\n";
        return 1;
      }
      OS << Out;
    }
  } else {
    std::printf("Native backend vs device model (%s); native: %u "
                "thread(s), best of %u after %u warmup\n",
                Dev.Name.c_str(), Threads, Repeats, Warmup);
    printRule(104);
    std::printf("%-12s %-14s %-12s %11s %12s %12s %13s %9s\n", "Benchmark",
                "Variant", "Grid", "native ms", "nat GEl/s",
                "model ms", "model GEl/s", "max err");
    printRule(104);
    for (const Row &R : Rows) {
      if (!R.Skipped.empty()) {
        std::printf("%-12s %-14s %-12s skipped (%s)\n", R.Name.c_str(),
                    R.Variant.c_str(), R.MeasureGrid.c_str(),
                    R.Skipped.c_str());
        continue;
      }
      std::printf("%-12s %-14s %-12s %11.4f %12.3f %12.3f %13.3f %9.2g\n",
                  R.Name.c_str(), R.Variant.c_str(), R.MeasureGrid.c_str(),
                  R.NativeMs, R.NativeGElems, R.ModeledMs, R.ModeledGElems,
                  R.MaxErr);
    }
    printRule(104);
    std::printf("model times are for the %s at the paper's grid; native "
                "times are this host at the %s grid\n",
                Dev.Name.c_str(), Full ? "paper's target" : "measurement");
  }

  return AllValid ? 0 : 1;
}
