//===- bench_native_backend.cpp - Native backend vs simulator model --------===//
//
// Part of the liftcpp project.
//
// Runs the paper's 2D/3D stencils through the native backend (C
// emission -> host compiler -> dlopen -> real execution) and reports
// measured wall-clock time next to the device-model prediction the
// tuner normally ranks by. Each variant is validated against the
// benchmark's independent golden implementation (max |err| < 1e-3;
// the harness exits non-zero otherwise), so the table doubles as an
// end-to-end correctness check of the emitted C.
//
// The two time columns deliberately measure different things: the
// model predicts seconds on the paper's GPU (NvidiaK20c by default)
// at the paper's target grid, while the native column is real seconds
// on this host CPU at the reduced measurement grid. The comparison is
// about *ranking agreement and availability of a measured objective*,
// not absolute agreement.
//
// Passing --json [path] emits the JSON snapshot checked in as
// BENCH_native_backend.json. --jobs N sets the OpenMP thread count of
// the native runs; --warmup/--repeats control the timing protocol.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "codegen/Runner.h"
#include "ir/StructuralHash.h"
#include "native/NativeRunner.h"
#include "ocl/Device.h"
#include "rewrite/Lowering.h"
#include "tuner/Tuner.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::stencil;
using namespace lift::tuner;
using namespace lift::bench;

namespace {

struct Row {
  std::string Name;
  std::string Variant;
  std::string MeasureGrid;
  std::string TargetGrid;
  double NativeMs = 0;
  double NativeGElems = 0; ///< at measurement size, on this host
  double ModeledMs = 0;
  double ModeledGElems = 0; ///< at target size, on the device model
  double MaxErr = 0;
};

unsigned parseUnsigned(int Argc, char **Argv, const char *Flag,
                       unsigned Default) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::string(Argv[I]) == Flag)
      return unsigned(std::atoi(Argv[I + 1]));
  return Default;
}

} // namespace

int main(int argc, char **argv) {
  obs::ObsSession Obs = obsSessionFromArgs(argc, argv);
  unsigned Threads = parseJobs(argc, argv, /*Default=*/1);
  unsigned Warmup = parseUnsigned(argc, argv, "--warmup", 1);
  unsigned Repeats = parseUnsigned(argc, argv, "--repeats", 3);

  bool Json = false;
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    if (std::string(argv[I]) == "--json") {
      Json = true;
      if (I + 1 < argc && argv[I + 1][0] != '-')
        JsonPath = argv[I + 1];
    }
  }

  try {
    native::probeToolchain();
  } catch (const native::NativeError &Ex) {
    std::fprintf(stderr, "bench_native_backend: no usable toolchain: %s\n",
                 Ex.what());
    return 1;
  }

  ocl::DeviceSpec Dev = ocl::deviceNvidiaK20c();

  // The two code shapes the backend emits: flat OpenMP-parallel loops
  // (untiled mapGlb) and work-group tiles staged through a private
  // local-memory array (tiled + local). Variants that do not satisfy a
  // benchmark's divisibility constraints are skipped, like the tuner
  // would prune them.
  std::vector<Candidate> Variants(2);
  Variants[0].Options.Tile = false;
  Variants[1].Options.Tile = true;
  Variants[1].Options.TileOutputs = 16;
  Variants[1].Options.UseLocalMem = true;

  std::vector<Row> Rows;
  bool AllValid = true;

  for (const char *Name : {"Jacobi2D5pt", "Gaussian", "Hotspot2D",
                           "Jacobi3D7pt", "Heat", "Hotspot3D"}) {
    const Benchmark &B = findBenchmark(Name);
    TuningProblem P = makeProblem(B, /*LargeTarget=*/false);
    ocl::SizeEnv MeasureEnv = makeSizeEnv(P.Instance, P.Measure);
    std::vector<float> Want = B.Golden(P.Inputs, P.Measure);

    for (const Candidate &C : Variants) {
      Evaluated E = evaluateCandidate(P, Dev, C, /*Jobs=*/1);
      if (!E.Valid)
        continue; // constraint-pruned (e.g. tile does not divide)

      ir::Program Low = rewrite::lowerStencil(P.Instance.P, C.Options);
      codegen::Compiled CC = codegen::compileProgram(Low, B.Name);
      Row R;
      R.Name = Name;
      R.Variant = C.Options.describe();
      R.MeasureGrid = extentsToString(P.Measure);
      R.TargetGrid = extentsToString(P.Target);
      R.ModeledMs = E.T.Total * 1e3;
      R.ModeledGElems = E.GElemsPerSec;
      try {
        native::NativeKernelPtr Kern =
            native::KernelCache::global().getOrCompile(
                ir::structuralHash(Low), CC.K);
        native::NativeRunResult NR = native::runNative(
            CC, *Kern, P.Inputs, MeasureEnv, Threads, Warmup, Repeats);
        R.NativeMs = NR.Seconds * 1e3;
        R.NativeGElems =
            double(totalElems(P.Measure)) / NR.Seconds / 1e9;
        for (std::size_t X = 0; X != Want.size(); ++X)
          R.MaxErr = std::max(
              R.MaxErr, double(std::abs(NR.Output[X] - Want[X])));
      } catch (const native::NativeError &Ex) {
        std::fprintf(stderr, "%s %s: native backend failed: %s\n", Name,
                     R.Variant.c_str(), Ex.what());
        AllValid = false;
        continue;
      }
      if (R.MaxErr >= 1e-3) {
        std::fprintf(stderr, "%s %s: VALIDATION FAILED (max err %.3g)\n",
                     Name, R.Variant.c_str(), R.MaxErr);
        AllValid = false;
      }
      Rows.push_back(R);
    }
  }

  if (Json) {
    std::string Out = "{\n\"device_model\": \"" + Dev.Name + "\"" +
                      ",\n\"threads\": " + std::to_string(Threads) +
                      ",\n\"warmup\": " + std::to_string(Warmup) +
                      ",\n\"repeats\": " + std::to_string(Repeats) +
                      ",\n\"benchmarks\": [\n";
    for (std::size_t I = 0; I != Rows.size(); ++I) {
      const Row &R = Rows[I];
      char Buf[512];
      std::snprintf(
          Buf, sizeof(Buf),
          "  {\"name\": \"%s\", \"variant\": \"%s\", "
          "\"measure_grid\": \"%s\", \"target_grid\": \"%s\", "
          "\"native_ms\": %.4f, \"native_gelems_per_sec\": %.4f, "
          "\"modeled_ms\": %.4f, \"modeled_gelems_per_sec\": %.4f, "
          "\"max_err\": %.3g}",
          R.Name.c_str(), R.Variant.c_str(), R.MeasureGrid.c_str(),
          R.TargetGrid.c_str(), R.NativeMs, R.NativeGElems, R.ModeledMs,
          R.ModeledGElems, R.MaxErr);
      Out += Buf;
      Out += I + 1 == Rows.size() ? "\n" : ",\n";
    }
    Out += "]\n}\n";
    if (JsonPath.empty()) {
      std::cout << Out;
    } else {
      std::ofstream OS(JsonPath);
      if (!OS) {
        std::cerr << "cannot open " << JsonPath << " for writing\n";
        return 1;
      }
      OS << Out;
    }
  } else {
    std::printf("Native backend vs device model (%s); native: %u "
                "thread(s), best of %u after %u warmup\n",
                Dev.Name.c_str(), Threads, Repeats, Warmup);
    printRule(104);
    std::printf("%-12s %-14s %-12s %11s %12s %12s %13s %9s\n", "Benchmark",
                "Variant", "Grid", "native ms", "nat GEl/s",
                "model ms", "model GEl/s", "max err");
    printRule(104);
    for (const Row &R : Rows)
      std::printf("%-12s %-14s %-12s %11.4f %12.3f %12.3f %13.3f %9.2g\n",
                  R.Name.c_str(), R.Variant.c_str(), R.MeasureGrid.c_str(),
                  R.NativeMs, R.NativeGElems, R.ModeledMs, R.ModeledGElems,
                  R.MaxErr);
    printRule(104);
    std::printf("model times are for the %s at the paper's grid; native "
                "times are this host at the measurement grid\n",
                Dev.Name.c_str());
  }

  return AllValid ? 0 : 1;
}
