//===- bench_rewrite_engine.cpp - Rewrite engine microbenchmarks -----------===//
//
// Part of the liftcpp project.
//
// google-benchmark microbenchmarks of the rewrite machinery: rule
// application, the overlapped-tiling rule, and full stencil lowering.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"

#include <benchmark/benchmark.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::rewrite;
using namespace lift::stencil;

namespace {

void BM_TilingRuleApplication(benchmark::State &State) {
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  BenchmarkInstance I = B.Build();
  Rule R = tiling1DRule(16);
  for (auto _ : State) {
    // 2D programs contain a 1D slide inside slideNd; count matches.
    int Matches = countMatches(R, I.P->getBody());
    benchmark::DoNotOptimize(Matches);
  }
}
BENCHMARK(BM_TilingRuleApplication);

void BM_LowerStencilGlobal(benchmark::State &State) {
  const Benchmark &B = findBenchmark("Jacobi2D9pt");
  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  for (auto _ : State) {
    Program Low = lowerStencil(I.P, O);
    benchmark::DoNotOptimize(Low.get());
  }
}
BENCHMARK(BM_LowerStencilGlobal);

void BM_LowerStencilTiledLocal(benchmark::State &State) {
  const Benchmark &B = findBenchmark("Jacobi2D9pt");
  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  O.UseLocalMem = true;
  for (auto _ : State) {
    Program Low = lowerStencil(I.P, O);
    benchmark::DoNotOptimize(Low.get());
  }
}
BENCHMARK(BM_LowerStencilTiledLocal);

void BM_MatchSlideNd3D(benchmark::State &State) {
  const Benchmark &B = findBenchmark("Jacobi3D7pt");
  BenchmarkInstance I = B.Build();
  std::optional<MapNdMatch> M = matchMapNd(I.P->getBody());
  for (auto _ : State) {
    std::optional<SlideNdMatch> S = matchSlideNd(M->Input);
    benchmark::DoNotOptimize(S.has_value());
  }
}
BENCHMARK(BM_MatchSlideNd3D);

void BM_CloneProgram3D(benchmark::State &State) {
  const Benchmark &B = findBenchmark("Poisson");
  BenchmarkInstance I = B.Build();
  for (auto _ : State) {
    Program P = cloneProgram(I.P);
    benchmark::DoNotOptimize(P.get());
  }
}
BENCHMARK(BM_CloneProgram3D);

} // namespace

BENCHMARK_MAIN();
