//===- bench_rewrite_engine.cpp - Rewrite engine microbenchmarks -----------===//
//
// Part of the liftcpp project.
//
// google-benchmark microbenchmarks of the rewrite machinery: rule
// application, the overlapped-tiling rule, full stencil lowering, and
// automatic rewrite-space exploration (the path most sensitive to the
// cost of program equality checks).
//
// Passing --json [path] emits a compact JSON summary (benchmark name,
// nanoseconds per iteration, iteration count) instead of the console
// table, so successive PRs can track the exploration-throughput
// trajectory; the checked-in BENCH_rewrite_engine.json snapshot at the
// repo root is produced this way.
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"
#include "rewrite/Exploration.h"
#include "BenchSupport.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"
#include "stencil/StencilOps.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::rewrite;
using namespace lift::stencil;

namespace {

void BM_TilingRuleApplication(benchmark::State &State) {
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  BenchmarkInstance I = B.Build();
  Rule R = tiling1DRule(16);
  for (auto _ : State) {
    // 2D programs contain a 1D slide inside slideNd; count matches.
    int Matches = countMatches(R, I.P->getBody());
    benchmark::DoNotOptimize(Matches);
  }
}
BENCHMARK(BM_TilingRuleApplication);

void BM_LowerStencilGlobal(benchmark::State &State) {
  const Benchmark &B = findBenchmark("Jacobi2D9pt");
  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  for (auto _ : State) {
    Program Low = lowerStencil(I.P, O);
    benchmark::DoNotOptimize(Low.get());
  }
}
BENCHMARK(BM_LowerStencilGlobal);

void BM_LowerStencilTiledLocal(benchmark::State &State) {
  const Benchmark &B = findBenchmark("Jacobi2D9pt");
  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  O.UseLocalMem = true;
  for (auto _ : State) {
    Program Low = lowerStencil(I.P, O);
    benchmark::DoNotOptimize(Low.get());
  }
}
BENCHMARK(BM_LowerStencilTiledLocal);

void BM_MatchSlideNd3D(benchmark::State &State) {
  const Benchmark &B = findBenchmark("Jacobi3D7pt");
  BenchmarkInstance I = B.Build();
  std::optional<MapNdMatch> M = matchMapNd(I.P->getBody());
  for (auto _ : State) {
    std::optional<SlideNdMatch> S = matchSlideNd(M->Input);
    benchmark::DoNotOptimize(S.has_value());
  }
}
BENCHMARK(BM_MatchSlideNd3D);

void BM_CloneProgram3D(benchmark::State &State) {
  const Benchmark &B = findBenchmark("Poisson");
  BenchmarkInstance I = B.Build();
  for (auto _ : State) {
    Program P = cloneProgram(I.P);
    benchmark::DoNotOptimize(P.get());
  }
}
BENCHMARK(BM_CloneProgram3D);

/// The unannotated 1D Jacobi from the exploration tests: sum over a
/// 3-point clamped neighborhood.
Program jacobi1DProgram() {
  AExpr N = var("n", Range(1, 1 << 30));
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduce(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  return makeProgram(
      {A}, map(SumNbh, slide(cst(3), cst(1),
                             pad(cst(1), cst(1), Boundary::clamp(), A))));
}

/// Full automatic exploration of a 1D Jacobi stencil: the workload the
/// paper's search relies on, and the one dominated by candidate-program
/// deduplication cost.
void BM_ExploreJacobi1D(benchmark::State &State) {
  Program P = jacobi1DProgram();
  ExplorationOptions O;
  O.MaxDepth = static_cast<int>(State.range(0));
  O.MaxPrograms = 256;
  for (auto _ : State) {
    std::vector<Derivation> Space = explore(P, stencilExplorationRules(), O);
    benchmark::DoNotOptimize(Space.data());
    State.counters["programs"] =
        benchmark::Counter(static_cast<double>(Space.size()));
  }
}
BENCHMARK(BM_ExploreJacobi1D)->Arg(2)->Arg(3);

/// 2D exploration: deeper expression trees per candidate, so equality
/// and type-inference costs weigh more per program.
void BM_ExploreJacobi2D(benchmark::State &State) {
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  BenchmarkInstance I = B.Build();
  ExplorationOptions O;
  O.MaxDepth = 2;
  O.MaxPrograms = 128;
  for (auto _ : State) {
    std::vector<Derivation> Space = explore(I.P, stencilExplorationRules(), O);
    benchmark::DoNotOptimize(Space.data());
    State.counters["programs"] =
        benchmark::Counter(static_cast<double>(Space.size()));
  }
}
BENCHMARK(BM_ExploreJacobi2D);

/// Captures per-benchmark results and renders the compact JSON summary
/// used for the checked-in snapshot.
class CompactJsonReporter : public benchmark::BenchmarkReporter {
public:
  explicit CompactJsonReporter(std::ostream &OS) : OS(OS) {}

  bool ReportContext(const Context &) override { return true; }

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.error_occurred)
        continue;
      Lines.push_back("  {\"name\": \"" + R.benchmark_name() +
                      "\", \"ns_per_iter\": " +
                      std::to_string(R.GetAdjustedRealTime()) +
                      ", \"iterations\": " + std::to_string(R.iterations) +
                      "}");
    }
  }

  void Finalize() override {
    OS << "{\n\"meta\": " << lift::bench::benchMetaJson() << ",\n"
       << "\"benchmarks\": [\n";
    for (std::size_t I = 0; I != Lines.size(); ++I)
      OS << Lines[I] << (I + 1 == Lines.size() ? "\n" : ",\n");
    OS << "]\n}\n";
  }

private:
  std::ostream &OS;
  std::vector<std::string> Lines;
};

} // namespace

int main(int argc, char **argv) {
  lift::obs::ObsSession Obs(lift::obs::parseObsOptions(argc, argv));
  // Extract our own --json [path] and observability flags before
  // google-benchmark sees the command line; everything else passes
  // through unchanged.
  bool Json = false;
  std::string JsonPath;
  std::vector<char *> Args;
  for (int I = 0; I != argc; ++I) {
    lift::obs::ObsOptions Sink;
    if (lift::obs::parseObsFlag(argv[I], Sink))
      continue;
    if (std::strcmp(argv[I], "--json") == 0) {
      Json = true;
      if (I + 1 < argc && argv[I + 1][0] != '-')
        JsonPath = argv[++I];
      continue;
    }
    Args.push_back(argv[I]);
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  if (!Json) {
    benchmark::RunSpecifiedBenchmarks();
  } else if (JsonPath.empty()) {
    CompactJsonReporter R(std::cout);
    benchmark::RunSpecifiedBenchmarks(&R);
  } else {
    std::ofstream OS(JsonPath);
    if (!OS) {
      std::cerr << "cannot open " << JsonPath << " for writing\n";
      return 1;
    }
    CompactJsonReporter R(OS);
    benchmark::RunSpecifiedBenchmarks(&R);
  }
  benchmark::Shutdown();
  return Obs.finish();
}
