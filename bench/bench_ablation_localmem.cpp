//===- bench_ablation_localmem.cpp - Local memory ablation -----------------===//
//
// Part of the liftcpp project.
//
// Ablation for the paper's §4.2 design choice: the toLocal rewrite
// (staging tiles in local memory) as a function of data reuse. Reuse
// grows with the stencil's point count (5pt -> 9pt -> 25pt), so the
// benefit of staging should grow with it on devices with real
// scratchpads — and never materialize on the Mali-like device, whose
// local memory is emulated.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "ocl/Device.h"
#include "tuner/Tuner.h"

#include <cstdio>

using namespace lift;
using namespace lift::stencil;
using namespace lift::tuner;
using namespace lift::bench;

int main(int argc, char **argv) {
  obs::ObsSession Obs = obsSessionFromArgs(argc, argv);
  unsigned Jobs = parseJobs(argc, argv);
  std::printf("Ablation: local-memory staging (toLocal rule, paper 4.2) "
              "[jobs=%u]\n", Jobs);
  std::printf("Tiled variants (tile=16 outputs/dim) with and without "
              "staging; ratio >1 means staging helps.\n");
  printRule();
  std::printf("%-14s %4s", "Benchmark", "Pts");
  for (const ocl::DeviceSpec &Dev : ocl::paperDevices())
    std::printf("  %10s/st %10s/un %6s", Dev.Name.c_str() + 0, "", "ratio");
  std::printf("\n");
  printRule();

  for (const char *Name : {"Jacobi2D5pt", "Jacobi2D9pt", "Gaussian"}) {
    const Benchmark &B = findBenchmark(Name);
    TuningProblem P = makeProblem(B, false);

    Candidate Staged, Unstaged;
    Staged.Options.Tile = Unstaged.Options.Tile = true;
    Staged.Options.TileOutputs = Unstaged.Options.TileOutputs = 16;
    Staged.Options.UseLocalMem = true;

    std::printf("%-14s %4d", B.Name.c_str(), B.Points);
    for (const ocl::DeviceSpec &Dev : ocl::paperDevices()) {
      Evaluated S = evaluateCandidate(P, Dev, Staged, Jobs);
      Evaluated U = evaluateCandidate(P, Dev, Unstaged, Jobs);
      if (S.Valid && U.Valid)
        std::printf("  %13.3f %13.3f %5.2fx", S.GElemsPerSec,
                    U.GElemsPerSec, S.GElemsPerSec / U.GElemsPerSec);
      else
        std::printf("  %13s %13s %6s", "-", "-", "-");
    }
    std::printf("\n");
  }
  printRule();
  return Obs.finish();
}
