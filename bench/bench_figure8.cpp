//===- bench_figure8.cpp - Reproduces Figure 8 ----------------------------===//
//
// Part of the liftcpp project.
//
// Figure 8: speedup of Lift-generated kernels over PPCG-generated
// kernels, both auto-tuned, for small and large input sizes on the
// three modeled GPUs. PPCG is modeled as a restricted schedule space:
// always rectangular overlapped tiling with shared-memory staging and
// tunable per-thread sequential work (its default stencil schedule,
// per the paper's analysis); Lift additionally explores untiled
// variants. Large sizes are skipped on the ARM GPU (paper: they did
// not fit its memory).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "ocl/Device.h"
#include "tuner/Tuner.h"

#include <cstdio>

using namespace lift;
using namespace lift::stencil;
using namespace lift::tuner;
using namespace lift::bench;

int main(int argc, char **argv) {
  obs::ObsSession Obs = obsSessionFromArgs(argc, argv);
  TuneOptions Opts;
  Opts.Jobs = parseJobs(argc, argv);
  std::printf("Figure 8: speedup of Lift over PPCG (both tuned)  "
              "[jobs=%u%s]\n", Opts.Jobs,
              Opts.Jobs == 0 ? " (all workers)" : "");
  printRule(110);
  std::printf("%-12s %-13s %-6s %10s %10s %8s  %-24s %s\n", "Device",
              "Benchmark", "Size", "Lift", "PPCG", "Speedup",
              "Lift variant", "PPCG variant");
  printRule(110);

  int LiftTiledBest[3] = {0, 0, 0};
  int Cases[3] = {0, 0, 0};
  int DevIdx = 0;
  for (const ocl::DeviceSpec &Dev : ocl::paperDevices()) {
    for (const Benchmark &B : allBenchmarks()) {
      if (!B.InFigure8)
        continue;
      for (bool Large : {false, true}) {
        if (Large && Dev.Name == "MaliT628")
          continue; // did not fit the ARM GPU in the paper
        TuningProblem P = makeProblem(B, Large);

        TuneResult Lift = tuneStencil(P, Dev, liftSpace(), Opts);
        TuneResult Ppcg = tuneStencil(P, Dev, ppcgSpace(), Opts);

        ++Cases[DevIdx];
        if (Lift.Best.C.Options.Tile)
          ++LiftTiledBest[DevIdx];

        std::printf("%-12s %-13s %-6s %10.3f %10.3f %7.2fx  %-24s %s\n",
                    Dev.Name.c_str(), B.Name.c_str(),
                    Large ? "large" : "small", Lift.Best.GElemsPerSec,
                    Ppcg.Best.GElemsPerSec,
                    Lift.Best.GElemsPerSec / Ppcg.Best.GElemsPerSec,
                    Lift.Best.C.describe().c_str(),
                    Ppcg.Best.C.describe().c_str());
      }
    }
    printRule(110);
    ++DevIdx;
  }

  const char *Names[3] = {"NvidiaK20c", "AmdHd7970", "MaliT628"};
  std::printf("Best-Lift variants using tiling: ");
  for (int D = 0; D != 3; ++D)
    std::printf("%s %d/%d  ", Names[D], LiftTiledBest[D], Cases[D]);
  std::printf("\nPaper shape: Lift >= PPCG nearly everywhere (up to ~4x on "
              "NVIDIA, one larger outlier);\nresults tighter on ARM; "
              "tiling only ever wins on NVIDIA (paper: 33%% there, none "
              "on AMD/ARM).\n");
  return Obs.finish();
}
