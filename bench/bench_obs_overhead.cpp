//===- bench_obs_overhead.cpp - Observability overhead microbenchmarks -----===//
//
// Part of the liftcpp project.
//
// Measures the cost the observability subsystem adds to instrumented
// pipeline code. The design promise is that disabled instrumentation
// is free enough to leave in every hot path permanently:
//
//  * BM_Baseline            — the empty loop the others are judged
//                             against.
//  * BM_SpanDisabled        — constructing/destroying a Span while
//                             tracing is off (one relaxed atomic load
//                             and a branch; must be within noise of
//                             the baseline).
//  * BM_SpanArgsDisabled    — a Span plus two arg() calls, still off
//                             (args must also no-op).
//  * BM_SpanEnabled         — the real recording cost when tracing is
//                             on (timestamps + a per-thread buffer
//                             push), for scale.
//  * BM_CounterInc          — a registry counter increment, the cost
//                             of always-on metrics (a relaxed
//                             fetch_add on a cached reference).
//
// Passing --json [path] emits the compact JSON summary used for the
// checked-in BENCH_obs_overhead.json snapshot at the repo root.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "obs/Clock.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "obs/Trace.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace lift;

namespace {

void BM_Baseline(benchmark::State &State) {
  std::int64_t X = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(++X);
  }
}
BENCHMARK(BM_Baseline);

void BM_SpanDisabled(benchmark::State &State) {
  obs::Tracer::global().clear(); // also disables
  std::int64_t X = 0;
  for (auto _ : State) {
    obs::Span S("bench.disabled", "bench");
    benchmark::DoNotOptimize(++X);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanArgsDisabled(benchmark::State &State) {
  obs::Tracer::global().clear();
  std::int64_t X = 0;
  for (auto _ : State) {
    obs::Span S("bench.disabled-args", "bench");
    S.arg("n", X);
    S.arg("s", "value");
    benchmark::DoNotOptimize(++X);
  }
}
BENCHMARK(BM_SpanArgsDisabled);

void BM_SpanEnabled(benchmark::State &State) {
  obs::Tracer &T = obs::Tracer::global();
  T.enable();
  std::int64_t N = 0;
  for (auto _ : State) {
    {
      obs::Span S("bench.enabled", "bench");
      benchmark::DoNotOptimize(S);
    }
    // Cap buffered events so a long run cannot grow without bound;
    // re-enabling drops the buffer and is amortized to nothing.
    if (++N % (1 << 16) == 0)
      T.enable();
  }
  T.clear();
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterInc(benchmark::State &State) {
  // Hot paths cache the reference, so the lookup is outside the loop.
  obs::Counter &C = obs::Registry::global().counter("bench.counter");
  for (auto _ : State) {
    C.inc();
  }
  C.reset();
}
BENCHMARK(BM_CounterInc);

// The clock seam (obs/Clock.h) is one relaxed atomic load plus the
// same steady_clock query the code would make directly; the two must
// be within noise of each other or the runner/profiler timing paths
// pay for their testability.
void BM_ChronoSteadyNow(benchmark::State &State) {
  for (auto _ : State) {
    benchmark::DoNotOptimize(std::chrono::steady_clock::now());
  }
}
BENCHMARK(BM_ChronoSteadyNow);

void BM_ClockSeamNow(benchmark::State &State) {
  for (auto _ : State) {
    benchmark::DoNotOptimize(obs::monotonicNowNs());
  }
}
BENCHMARK(BM_ClockSeamNow);

/// Same compact JSON summary as the other microbench harnesses.
class CompactJsonReporter : public benchmark::BenchmarkReporter {
public:
  explicit CompactJsonReporter(std::ostream &OS) : OS(OS) {}

  bool ReportContext(const Context &) override { return true; }

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.error_occurred)
        continue;
      Lines.push_back("  {\"name\": \"" + R.benchmark_name() +
                      "\", \"ns_per_iter\": " +
                      std::to_string(R.GetAdjustedRealTime()) +
                      ", \"iterations\": " + std::to_string(R.iterations) +
                      "}");
    }
  }

  void Finalize() override {
    OS << "{\n\"meta\": " << lift::bench::benchMetaJson() << ",\n"
       << "\"benchmarks\": [\n";
    for (std::size_t I = 0; I != Lines.size(); ++I)
      OS << Lines[I] << (I + 1 == Lines.size() ? "\n" : ",\n");
    OS << "]\n}\n";
  }

private:
  std::ostream &OS;
  std::vector<std::string> Lines;
};

} // namespace

int main(int argc, char **argv) {
  // The obs flags work here too (e.g. --metrics to dump the counter
  // this bench bumps), and must be stripped before google-benchmark
  // rejects them as unrecognized.
  lift::obs::ObsSession Obs(lift::obs::parseObsOptions(argc, argv));
  bool Json = false;
  std::string JsonPath;
  std::vector<char *> Args;
  for (int I = 0; I != argc; ++I) {
    lift::obs::ObsOptions Sink;
    if (lift::obs::parseObsFlag(argv[I], Sink))
      continue;
    if (std::strcmp(argv[I], "--json") == 0) {
      Json = true;
      if (I + 1 < argc && argv[I + 1][0] != '-')
        JsonPath = argv[++I];
      continue;
    }
    Args.push_back(argv[I]);
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  if (!Json) {
    benchmark::RunSpecifiedBenchmarks();
  } else if (JsonPath.empty()) {
    CompactJsonReporter R(std::cout);
    benchmark::RunSpecifiedBenchmarks(&R);
  } else {
    std::ofstream OS(JsonPath);
    if (!OS) {
      std::cerr << "cannot open " << JsonPath << " for writing\n";
      return 1;
    }
    CompactJsonReporter R(OS);
    benchmark::RunSpecifiedBenchmarks(&R);
  }
  benchmark::Shutdown();
  return Obs.finish();
}
