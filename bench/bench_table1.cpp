//===- bench_table1.cpp - Reproduces Table 1 ------------------------------===//
//
// Part of the liftcpp project.
//
// Prints the benchmark characteristics of Table 1 (dimensionality,
// stencil points, input sizes, number of input grids), derived from the
// benchmark definitions themselves.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include <cstdio>

using namespace lift;
using namespace lift::stencil;
using namespace lift::bench;

int main(int argc, char **argv) {
  // Accepted for harness-uniform command lines; Table 1 is derived
  // from the benchmark definitions alone and runs no simulations.
  (void)parseJobs(argc, argv);
  obs::ObsSession Obs = obsSessionFromArgs(argc, argv);
  std::printf("Table 1: Benchmarks used in the evaluation "
              "(CGO'18 Lift stencil reproduction)\n");
  printRule();
  std::printf("%-14s %-18s %4s %4s %-24s %7s\n", "Benchmark", "Suite", "Dim",
              "Pts", "Input size", "#grids");
  printRule();
  for (const Benchmark &B : allBenchmarks()) {
    std::string Sizes = extentsToString(B.SmallExtents);
    if (!B.LargeExtents.empty())
      Sizes += " / " + extentsToString(B.LargeExtents);
    std::printf("%-14s %-18s %3uD %4d %-24s %7d\n", B.Name.c_str(),
                B.Suite.c_str(), B.Dims, B.Points, Sizes.c_str(),
                B.NumGrids);
  }
  printRule();
  std::printf("Figure 7 set: hand-written reference comparison; "
              "Figure 8 set: PPCG comparison.\n");
  return Obs.finish();
}
