//===- bench_primitives.cpp - Compiler-path microbenchmarks ----------------===//
//
// Part of the liftcpp project.
//
// google-benchmark microbenchmarks of the compilation substrate: view
// resolution, symbolic arithmetic simplification, code generation and
// simulator execution throughput. These measure *this repository's*
// compiler, not the modeled GPUs.
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"
#include "codegen/View.h"
#include "ocl/Emitter.h"
#include "stencil/StencilOps.h"

#include <benchmark/benchmark.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::codegen;
using namespace lift::stencil;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

Program jacobiLowered1D(AExpr N) {
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduceSeq(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  return makeProgram(
      {A}, mapGlb(0, SumNbh,
                  slide(cst(3), cst(1),
                        pad(cst(1), cst(1), Boundary::clamp(), A))));
}

void BM_ArithSimplifyIndex(benchmark::State &State) {
  AExpr N = sizeVar("n");
  AExpr I = var("i", Range(0, (1 << 20) - 1));
  for (auto _ : State) {
    // The classic split/join round trip index.
    AExpr E = add(mul(floorDiv(I, cst(4)), cst(4)), floorMod(I, cst(4)));
    benchmark::DoNotOptimize(E);
  }
}
BENCHMARK(BM_ArithSimplifyIndex);

void BM_ViewResolveSlidePad(benchmark::State &State) {
  AExpr N = sizeVar("n");
  ViewPtr V = vSlide(cst(3), cst(1),
                     vPad(cst(1), N, Boundary::clamp(),
                          vMemory(0, arrayT(floatT(), N))));
  AExpr I = var("i", Range(0, 1 << 20));
  AExpr J = var("j", Range(0, 2));
  for (auto _ : State) {
    ocl::KExprPtr L =
        resolveLoad(vAccess(J, vAccess(I, V)), ResolveCallbacks());
    benchmark::DoNotOptimize(L);
  }
}
BENCHMARK(BM_ViewResolveSlidePad);

void BM_CompileJacobi1D(benchmark::State &State) {
  AExpr N = sizeVar("n");
  Program P = jacobiLowered1D(N);
  for (auto _ : State) {
    Compiled C = compileProgram(cloneProgram(P), "bm");
    benchmark::DoNotOptimize(C.OutputBufferId);
  }
}
BENCHMARK(BM_CompileJacobi1D);

void BM_EmitOpenCL(benchmark::State &State) {
  AExpr N = sizeVar("n");
  Compiled C = compileProgram(jacobiLowered1D(N), "bm");
  for (auto _ : State) {
    std::string Src = ocl::emitOpenCL(C.K);
    benchmark::DoNotOptimize(Src.size());
  }
}
BENCHMARK(BM_EmitOpenCL);

void BM_SimulatorThroughput(benchmark::State &State) {
  AExpr N = sizeVar("n");
  Compiled C = compileProgram(jacobiLowered1D(N), "bm");
  std::int64_t Len = State.range(0);
  std::vector<float> In(std::size_t(Len), 1.0f);
  ocl::SizeEnv Sizes{{N->getVarId(), Len}};
  for (auto _ : State) {
    RunResult R = runCompiled(C, {In}, Sizes);
    benchmark::DoNotOptimize(R.Output.data());
  }
  State.SetItemsProcessed(State.iterations() * Len);
}
BENCHMARK(BM_SimulatorThroughput)->Arg(1024)->Arg(16384);

void BM_InterpreterVsSimProgramBuild(benchmark::State &State) {
  // Cost of constructing the full 2D stencil expression tree.
  for (auto _ : State) {
    AExpr N = sizeVar("n");
    ParamPtr A = param("A", arrayT(arrayT(floatT(), N), N));
    ExprPtr E = stencilNd(2, sumNeighborhood(2), cst(3), cst(1), cst(1),
                          cst(1), Boundary::clamp(), A);
    benchmark::DoNotOptimize(E.get());
  }
}
BENCHMARK(BM_InterpreterVsSimProgramBuild);

} // namespace

BENCHMARK_MAIN();
